package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// TestBatcherSequential checks the degenerate case: with no concurrency the
// batcher is a pass-through.
func TestBatcherSequential(t *testing.T) {
	s := OpenMemory()
	b := NewBatcher(s, 0)
	if err := b.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply([]Op{{Key: "k2", Value: []byte("v2")}, {Key: "k3", Value: []byte("v3")}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("k2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k1"); string(v) != "v1" {
		t.Fatalf("k1 = %q", v)
	}
	if s.Has("k2") {
		t.Fatal("k2 survived delete")
	}
	if v, _ := s.Get("k3"); string(v) != "v3" {
		t.Fatalf("k3 = %q", v)
	}
	if err := b.Apply(nil); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherConcurrentDurable hammers a durable store through the batcher
// and verifies every write lands and survives reopen (coalesced frames must
// stay crash-atomic).
func TestBatcherConcurrentDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true, GroupCommit: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(s, 8)
	const writers, each = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%02d/%03d", w, i)
				if err := b.Put(key, []byte(key)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Len(); got != writers*each {
		t.Fatalf("Len = %d, want %d", got, writers*each)
	}
	frames := s.WALRecords()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Sync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != writers*each {
		t.Fatalf("reopened Len = %d, want %d (from %d frames)", got, writers*each, frames)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("w%02d/%03d", w, i)
			if v, err := re.Get(key); err != nil || string(v) != key {
				t.Fatalf("Get(%s) = %q, %v", key, v, err)
			}
		}
	}
}

// TestBatcherCoalesces pins the point of the type: writes issued while a
// leader is stalled in fsync share WAL frames. The syncDelay hook parks the
// leader until the followers have queued, so the grouping is deterministic.
func TestBatcherCoalesces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true, GroupCommit: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := NewBatcher(s, 0)

	const followers = 7
	release := make(chan struct{})
	var once sync.Once
	s.syncDelay = func() {
		once.Do(func() { <-release }) // stall only the first (leader's) fsync
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		if err := b.Put("leader", []byte("x")); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the leader to claim the sync slot, then launch followers.
	waitFor(t, func() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.leading })
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Put(fmt.Sprintf("f%d", i), []byte("y")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	waitFor(t, func() bool { return b.queuedOps() == followers })
	close(release)
	wg.Wait()

	if got := s.Len(); got != followers+1 {
		t.Fatalf("Len = %d, want %d", got, followers+1)
	}
	walPath := s.walPath(0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// One frame for the leader's own batch, one for the coalesced group.
	if frames := countWALFrames(t, walPath); frames != 2 {
		t.Errorf("WAL frames = %d, want 2 (1 leader + 1 coalesced group)", frames)
	}
}

// countWALFrames walks a shard WAL and counts checksummed batch frames.
func countWALFrames(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for len(data) > 0 {
		_, n, err := decodeBatchRecord(data)
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		data = data[n:]
		frames++
	}
	return frames
}

// TestBatcherMaxOps checks that an over-full group splits rather than
// growing without bound.
func TestBatcherMaxOps(t *testing.T) {
	b := NewBatcher(OpenMemory(), 2)
	b.mu.Lock()
	b.leading = true // simulate an in-flight leader
	g1 := b.lastOpenGroup()
	g1.ops = append(g1.ops, Op{Key: "a"}, Op{Key: "b"})
	g2 := b.lastOpenGroup()
	if g1 == g2 {
		t.Fatal("full group reused")
	}
	if len(b.queue) != 2 {
		t.Fatalf("queue len = %d, want 2", len(b.queue))
	}
	b.mu.Unlock()
}

// TestBatcherClosedStore checks error propagation on both the leader and
// follower paths: a closed store fails every caller instead of hanging.
func TestBatcherClosedStore(t *testing.T) {
	s := OpenMemory()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(s, 0)
	if err := b.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("leader path err = %v, want ErrClosed", err)
	}
	// Follower path: fake an in-flight leader, enqueue, then drain as the
	// leader would.
	b.mu.Lock()
	b.leading = true
	b.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		done <- b.Put("k2", nil)
	}()
	waitFor(t, func() bool { return b.queuedOps() == 1 })
	b.mu.Lock()
	g := b.queue[0]
	b.queue = nil
	b.leading = false
	b.mu.Unlock()
	g.err = s.Apply(g.ops)
	close(g.done)
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("follower path err = %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkBatcherParallel measures coalesced single-op commits against the
// direct Apply path (BenchmarkApplyParallel) on a durable group-commit
// store — the shape of per-login record saves under load.
func BenchmarkBatcherParallel(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Sync: true, GroupCommit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	bt := NewBatcher(s, 0)
	val := []byte("token-record-sized-payload-0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := bt.Put(fmt.Sprintf("k%d", i%1024), val); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
