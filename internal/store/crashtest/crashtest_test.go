package crashtest

import (
	"math/rand"
	"testing"
)

// TestEveryTruncationOffsetSingleShard is the exhaustive property: one
// segment, and every byte offset of the WAL is a simulated crash point.
// The recovered state must always equal a prefix of the committed batches.
func TestEveryTruncationOffsetSingleShard(t *testing.T) {
	Run(t, Config{Seed: 1, Batches: 12, Shards: 1, MaxOpsPerBatch: 4})
}

// TestEveryTruncationOffsetSync re-runs the exhaustive property in
// durable (fsync-per-batch) mode — the frame layout must be identical.
func TestEveryTruncationOffsetSync(t *testing.T) {
	Run(t, Config{Seed: 2, Batches: 8, Shards: 1, MaxOpsPerBatch: 4, Sync: true})
}

// TestTruncationAcrossShards probes each of four segments, with batches
// confined to single shards, at every frame boundary (±1) plus a seeded
// sample of interior offsets.
func TestTruncationAcrossShards(t *testing.T) {
	Run(t, Config{Seed: 3, Batches: 16, Shards: 4, MaxOpsPerBatch: 3, Truncations: 120})
}

// TestTruncationCrossShardBatches lets batches span shards: a batch's
// frame lives in exactly one segment, so truncation still drops it wholly
// — the all-or-nothing guarantee across shard boundaries.
func TestTruncationCrossShardBatches(t *testing.T) {
	Run(t, Config{Seed: 4, Batches: 16, Shards: 4, MaxOpsPerBatch: 5, CrossShard: true, Truncations: 120})
}

// TestCompactThenCrashSingleShard runs Compact mid-history, then probes
// every truncation offset of the post-compaction segment: the snapshotted
// batches must survive every cut (the directory fsync makes the snapshot
// renames durable before the segments are truncated), later batches obey
// the usual prefix rule, and the recovered LSN clock never rewinds below
// the compaction point.
func TestCompactThenCrashSingleShard(t *testing.T) {
	Run(t, Config{Seed: 11, Batches: 12, Shards: 1, MaxOpsPerBatch: 4, CompactAfterBatch: 7})
}

// TestCompactThenCrashSync re-runs the compact-then-crash property in
// durable mode.
func TestCompactThenCrashSync(t *testing.T) {
	Run(t, Config{Seed: 12, Batches: 8, Shards: 1, MaxOpsPerBatch: 4, Sync: true, CompactAfterBatch: 4})
}

// TestCompactThenCrashAcrossShards spans four segments with cross-shard
// batches either side of the compaction.
func TestCompactThenCrashAcrossShards(t *testing.T) {
	Run(t, Config{Seed: 13, Batches: 16, Shards: 4, MaxOpsPerBatch: 5, CrossShard: true, Truncations: 120, CompactAfterBatch: 9})
}

// TestSeededRandomVariants is the seeded-random sweep (run under -race by
// the tier-1 `make race` gate): fresh seeds every run would not replay, so
// seeds derive from a fixed generator and are printed on failure by Run's
// messages.
func TestSeededRandomVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		cfg := Config{
			Seed:           rng.Int63(),
			Batches:        10 + rng.Intn(10),
			Shards:         1 << rng.Intn(3),
			MaxOpsPerBatch: 1 + rng.Intn(6),
			CrossShard:     rng.Intn(2) == 0,
			Truncations:    80,
		}
		if rng.Intn(2) == 0 {
			cfg.CompactAfterBatch = 1 + rng.Intn(cfg.Batches)
		}
		Run(t, cfg)
	}
}
