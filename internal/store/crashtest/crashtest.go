// Package crashtest is a crash-recovery property harness for the store's
// WAL: it commits a sequence of random batches, then simulates a crash at
// *every* possible WAL truncation point and asserts the reopened state is
// exactly a committed-batch prefix — never a partially applied batch,
// never a decode panic, never a failed reopen.
//
// The paper's back end is an MFA token database; per the MFA-threats
// survey in PAPERS.md, a store that fails open or corrupts token state on
// crash is a security bug, not just a reliability one. This harness is the
// proof the group-commit WAL keeps its atomicity promise.
package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"openmfa/internal/store"
)

// Config parameterises a harness run.
type Config struct {
	// Seed drives every random choice, so failures replay exactly.
	Seed int64
	// Batches is K, the number of committed batches.
	Batches int
	// Shards is the store's shard count (1 gives a single segment and
	// therefore a totally ordered history).
	Shards int
	// MaxOpsPerBatch bounds batch size (minimum 1).
	MaxOpsPerBatch int
	// CrossShard lets batches span shards; otherwise each batch's keys
	// are confined to one shard so the per-segment prefix oracle is a
	// total order per shard.
	CrossShard bool
	// Sync opens the store in durable mode.
	Sync bool
	// Truncations, when non-zero, caps how many truncation points are
	// probed per segment (sampled evenly plus all frame boundaries);
	// zero probes every byte offset.
	Truncations int
	// CompactAfterBatch, when N > 0, runs Compact after the Nth committed
	// batch: the snapshot then covers batches 1..N durably, the segments
	// restart from zero, and truncation may only ever drop later batches.
	// This is the compact-then-crash variant: it catches both a lost
	// snapshot rename (the directory-fsync-before-truncate ordering) and
	// an LSN clock reset (snapshot header frame) — either one makes the
	// reopened state diverge from the oracle or the reopen fail outright.
	CompactAfterBatch int
}

// history records what was committed: each batch, the segment its WAL
// frame landed in, and every segment's size after each commit.
type history struct {
	batches  [][]store.Op
	segment  []int     // batches[i]'s WAL segment
	sizeTo   [][]int64 // sizeTo[i][seg] = segment seg's size after batch i
	snapped  []bool    // batches[i] was folded into a snapshot by Compact
	segPaths []string
	shards   int
	snapLSN  uint64 // store's LSN when Compact ran (0 if it never did)
}

// Run executes the harness. Any property violation fails t with enough
// context (seed, batch, offset) to replay.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.Batches <= 0 {
		cfg.Batches = 12
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MaxOpsPerBatch <= 0 {
		cfg.MaxOpsPerBatch = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := commitHistory(t, rng, cfg)

	for seg := range h.segPaths {
		probeSegment(t, rng, cfg, h, seg)
	}
}

// commitHistory builds a fresh store, commits K random batches, records
// per-segment sizes after each commit, and closes the store.
func commitHistory(t *testing.T, rng *rand.Rand, cfg Config) *history {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{Shards: cfg.Shards, Sync: cfg.Sync})
	if err != nil {
		t.Fatalf("seed %d: open: %v", cfg.Seed, err)
	}
	h := &history{segPaths: s.WALPaths(), shards: s.NumShards()}

	keyspace := make([]string, 24)
	for i := range keyspace {
		keyspace[i] = fmt.Sprintf("user/%02d", i)
	}
	prevSizes := make([]int64, len(h.segPaths))
	for b := 0; b < cfg.Batches; b++ {
		nops := 1 + rng.Intn(cfg.MaxOpsPerBatch)
		var homeShard = -1
		batch := make([]store.Op, 0, nops)
		for len(batch) < nops {
			k := keyspace[rng.Intn(len(keyspace))]
			if !cfg.CrossShard {
				if homeShard == -1 {
					homeShard = s.ShardFor(k)
				} else if s.ShardFor(k) != homeShard {
					continue
				}
			}
			op := store.Op{Key: k}
			if rng.Intn(4) == 0 {
				op.Delete = true
			} else {
				op.Value = []byte(fmt.Sprintf("batch%03d-%s-%d", b, k, rng.Int63()))
			}
			batch = append(batch, op)
		}
		if err := s.Apply(batch); err != nil {
			t.Fatalf("seed %d: apply batch %d: %v", cfg.Seed, b, err)
		}
		h.batches = append(h.batches, batch)
		sizes := make([]int64, len(h.segPaths))
		grew := -1
		for i, p := range h.segPaths {
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatalf("seed %d: stat %s: %v", cfg.Seed, p, err)
			}
			sizes[i] = fi.Size()
			if sizes[i] > prevSizes[i] {
				if grew != -1 {
					t.Fatalf("seed %d: batch %d grew two segments (%d and %d): a batch must be one frame in one segment", cfg.Seed, b, grew, i)
				}
				grew = i
			}
		}
		if grew == -1 {
			t.Fatalf("seed %d: batch %d grew no segment", cfg.Seed, b)
		}
		h.sizeTo = append(h.sizeTo, sizes)
		h.segment = append(h.segment, grew)
		h.snapped = append(h.snapped, false)
		copy(prevSizes, sizes)

		if cfg.CompactAfterBatch > 0 && b+1 == cfg.CompactAfterBatch {
			if err := s.Compact(); err != nil {
				t.Fatalf("seed %d: compact after batch %d: %v", cfg.Seed, b, err)
			}
			h.snapLSN = s.LSN()
			for i := range h.snapped {
				h.snapped[i] = true
			}
			// Segments restart from zero; later sizeTo entries are offsets
			// in the post-compaction file contents.
			for i, p := range h.segPaths {
				fi, err := os.Stat(p)
				if err != nil {
					t.Fatalf("seed %d: stat %s after compact: %v", cfg.Seed, p, err)
				}
				if fi.Size() != 0 {
					t.Fatalf("seed %d: segment %s is %d bytes after compact, want 0", cfg.Seed, p, fi.Size())
				}
				prevSizes[i] = 0
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("seed %d: close: %v", cfg.Seed, err)
	}
	return h
}

// probeSegment simulates crashes by truncating one segment at chosen
// offsets (all of them by default) and checking the recovered state
// against the prefix oracle.
func probeSegment(t *testing.T, rng *rand.Rand, cfg Config, h *history, seg int) {
	t.Helper()
	full, err := os.ReadFile(h.segPaths[seg])
	if err != nil {
		t.Fatalf("seed %d: read segment %d: %v", cfg.Seed, seg, err)
	}
	offsets := chooseOffsets(rng, cfg, h, seg, len(full))
	for _, cut := range offsets {
		checkTruncation(t, cfg, h, seg, full, cut)
	}
}

// chooseOffsets returns the truncation points to probe: every byte when
// cfg.Truncations is zero, otherwise all frame boundaries (±1) plus an
// even sample, deduplicated.
func chooseOffsets(rng *rand.Rand, cfg Config, h *history, seg, size int) []int {
	if cfg.Truncations <= 0 || cfg.Truncations >= size+1 {
		out := make([]int, size+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{0: true, size: true}
	for b, s := range h.segment {
		if s == seg && !h.snapped[b] {
			edge := int(h.sizeTo[b][seg])
			for _, o := range []int{edge - 1, edge, edge + 1} {
				if o >= 0 && o <= size {
					seen[o] = true
				}
			}
		}
	}
	for len(seen) < cfg.Truncations {
		seen[rng.Intn(size+1)] = true
	}
	out := make([]int, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	return out
}

// checkTruncation copies the store directory, truncates segment seg to cut
// bytes, reopens, and asserts the state matches the oracle: every batch in
// other segments plus the longest prefix of this segment's batches whose
// frames fit inside cut, applied in original commit order.
func checkTruncation(t *testing.T, cfg Config, h *history, seg int, full []byte, cut int) {
	t.Helper()
	dir := t.TempDir()
	cloneDir(t, filepath.Dir(h.segPaths[seg]), dir)
	segPath := filepath.Join(dir, filepath.Base(h.segPaths[seg]))
	if err := os.WriteFile(segPath, full[:cut], 0o644); err != nil {
		t.Fatalf("seed %d: truncate: %v", cfg.Seed, err)
	}

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("seed %d: seg %d cut %d: reopen failed (torn tail must be tolerated): %v", cfg.Seed, seg, cut, err)
	}
	defer s.Close()

	// Oracle: replay committed batches, dropping those in seg whose
	// frame did not fully survive the cut. Batches folded into a snapshot
	// by Compact are durable no matter where the segment is cut.
	want := map[string][]byte{}
	kept := 0
	for b, batch := range h.batches {
		if h.segment[b] == seg && !h.snapped[b] && h.sizeTo[b][seg] > int64(cut) {
			continue
		}
		if h.segment[b] == seg {
			kept++
		}
		for _, op := range batch {
			if op.Delete {
				delete(want, op.Key)
			} else {
				want[op.Key] = op.Value
			}
		}
	}
	// The survivors in seg must be a *prefix* of its batches: a later
	// batch must never survive an earlier one's truncation. (Snapshotted
	// batches sit below every cut, so they are always the prefix's head.)
	sawDrop := false
	for b := range h.batches {
		if h.segment[b] != seg || h.snapped[b] {
			continue
		}
		survived := h.sizeTo[b][seg] <= int64(cut)
		if survived && sawDrop {
			t.Fatalf("seed %d: seg %d cut %d: batch %d survived after an earlier batch was cut", cfg.Seed, seg, cut, b)
		}
		if !survived {
			sawDrop = true
		}
	}
	// The LSN clock must never rewind below the compaction point: a
	// reissued LSN after a crash would poison replication.
	if lsn := s.LSN(); lsn < h.snapLSN {
		t.Fatalf("seed %d: seg %d cut %d: recovered LSN %d below compaction LSN %d (clock reset)",
			cfg.Seed, seg, cut, lsn, h.snapLSN)
	}

	got, err := s.Scan("")
	if err != nil {
		t.Fatalf("seed %d: scan: %v", cfg.Seed, err)
	}
	if len(got) != len(want) {
		t.Fatalf("seed %d: seg %d cut %d: recovered %d keys, oracle has %d (kept %d/%d batches in seg)",
			cfg.Seed, seg, cut, len(got), len(want), kept, segBatches(h, seg))
	}
	for _, kv := range got {
		wv, ok := want[kv.Key]
		if !ok {
			t.Fatalf("seed %d: seg %d cut %d: unexpected key %q after recovery (partial batch?)", cfg.Seed, seg, cut, kv.Key)
		}
		if !bytes.Equal(kv.Value, wv) {
			t.Fatalf("seed %d: seg %d cut %d: key %q = %q, oracle %q (partial batch replayed)",
				cfg.Seed, seg, cut, kv.Key, kv.Value, wv)
		}
	}
}

func segBatches(h *history, seg int) int {
	n := 0
	for _, s := range h.segment {
		if s == seg {
			n++
		}
	}
	return n
}

// cloneDir copies every regular file from src into dst.
func cloneDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
