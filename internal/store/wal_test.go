package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

func randomBatch(rng *rand.Rand) []Op {
	n := 1 + rng.Intn(6)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{Key: fmt.Sprintf("k%d/%d", rng.Intn(16), rng.Intn(1000))}
		if rng.Intn(4) == 0 {
			op.Delete = true
		} else {
			op.Value = make([]byte, rng.Intn(64))
			rng.Read(op.Value)
		}
		ops = append(ops, op)
	}
	return ops
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ops := randomBatch(rng)
		lsn := rng.Uint64()
		rec := encodeBatchRecord(lsn, ops)
		b, n, err := decodeBatchRecord(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(rec) {
			t.Fatalf("frameLen = %d, want %d", n, len(rec))
		}
		if b.lsn != lsn {
			t.Fatalf("lsn = %d, want %d", b.lsn, lsn)
		}
		// Normalise nil vs empty values for comparison; the codec
		// preserves emptiness but not nil-ness.
		want := make([]Op, len(ops))
		copy(want, ops)
		for j := range want {
			if !want[j].Delete && want[j].Value == nil {
				want[j].Value = []byte{}
			}
		}
		got := make([]Op, len(b.ops))
		copy(got, b.ops)
		for j := range got {
			if !got[j].Delete && got[j].Value == nil {
				got[j].Value = []byte{}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		// Canonical: re-encoding the decode reproduces the bytes.
		if !bytes.Equal(encodeBatchRecord(b.lsn, b.ops), rec) {
			t.Fatal("re-encode differs from original bytes")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := encodeBatchRecord(42, []Op{
		{Key: "alice", Value: []byte("secret")},
		{Key: "bob", Delete: true},
	})
	// Flip every single byte: each corruption must be rejected (wrong
	// CRC, marker, length, or structure), never accepted or panicking.
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0xFF
		if _, n, err := decodeBatchRecord(mut); err == nil {
			// A length-field mutation can still frame-align by luck
			// only if everything re-validates — with a CRC over the
			// payload that must not happen.
			t.Fatalf("corrupt byte %d accepted (frameLen %d)", i, n)
		}
	}
	// Truncation at every point must be rejected as incomplete.
	for i := 0; i < len(rec); i++ {
		if _, _, err := decodeBatchRecord(rec[:i]); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", i)
		}
	}
}

func TestDecodeRejectsOversizeClaims(t *testing.T) {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxPayloadSize+1)
	if _, _, err := decodeBatchRecord(hdr[:]); err == nil {
		t.Fatal("oversize payload length accepted")
	}
	// An op count far larger than the payload could hold must be
	// rejected before allocation.
	payload := make([]byte, minPayloadSize)
	binary.LittleEndian.PutUint32(payload[8:12], 1<<30)
	rec := frame(payload)
	if _, _, err := decodeBatchRecord(rec); err == nil {
		t.Fatal("absurd op count accepted")
	}
}

// frame wraps a payload in a valid header + marker (test helper for
// hand-built payloads).
func frame(payload []byte) []byte {
	rec := make([]byte, frameHeaderSize+len(payload)+1)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[frameHeaderSize:], payload)
	rec[len(rec)-1] = commitMarker
	return rec
}

func TestDecodeRejectsBadPayloadStructure(t *testing.T) {
	cases := map[string][]byte{
		"trailing garbage": func() []byte {
			p := make([]byte, minPayloadSize+3) // nops = 0 but 3 extra bytes
			return p
		}(),
		"bad op kind": func() []byte {
			p := make([]byte, minPayloadSize+5)
			binary.LittleEndian.PutUint32(p[8:12], 1)
			p[12] = 7
			return p
		}(),
		"key overruns payload": func() []byte {
			p := make([]byte, minPayloadSize+5)
			binary.LittleEndian.PutUint32(p[8:12], 1)
			p[12] = opDelete
			binary.LittleEndian.PutUint32(p[13:], 100)
			return p
		}(),
		"put missing value length": func() []byte {
			// A put whose key consumes the payload exactly, leaving no
			// room for the 4-byte value length.
			p := make([]byte, minPayloadSize+5+2)
			binary.LittleEndian.PutUint32(p[8:12], 1)
			p[12] = opPut
			binary.LittleEndian.PutUint32(p[13:], 2)
			return p
		}(),
		"value overruns payload": func() []byte {
			p := make([]byte, minPayloadSize+5+4)
			binary.LittleEndian.PutUint32(p[8:12], 1)
			p[12] = opPut
			binary.LittleEndian.PutUint32(p[13:], 0) // empty key
			binary.LittleEndian.PutUint32(p[17:], 100)
			return p
		}(),
	}
	for name, payload := range cases {
		if _, _, err := decodeBatchRecord(frame(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRecoverSegmentTruncatesAtFirstDamage(t *testing.T) {
	var buf []byte
	var lens []int
	for i := 0; i < 5; i++ {
		rec := encodeBatchRecord(uint64(i+1), []Op{{Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)}}})
		buf = append(buf, rec...)
		lens = append(lens, len(buf))
	}
	// Whole segment: all five batches.
	batches, valid := recoverSegment(buf)
	if len(batches) != 5 || valid != len(buf) {
		t.Fatalf("full segment: %d batches, valid %d", len(batches), valid)
	}
	// Corrupt batch 3: recovery keeps exactly the first three.
	mut := append([]byte(nil), buf...)
	mut[lens[2]+10] ^= 0xFF
	batches, valid = recoverSegment(mut)
	if len(batches) != 3 || valid != lens[2] {
		t.Fatalf("after corruption: %d batches, valid %d (want 3, %d)", len(batches), valid, lens[2])
	}
	// Every truncation point yields exactly the complete prefix.
	for cut := 0; cut <= len(buf); cut++ {
		want := 0
		for i, l := range lens {
			if l <= cut {
				want = i + 1
			}
		}
		batches, valid := recoverSegment(buf[:cut])
		if len(batches) != want {
			t.Fatalf("cut %d: %d batches, want %d", cut, len(batches), want)
		}
		if valid > cut {
			t.Fatalf("cut %d: valid %d beyond input", cut, valid)
		}
	}
}

func TestParseSnapshotStrict(t *testing.T) {
	rec := encodeBatchRecord(0, []Op{{Key: "k", Value: []byte("v")}})
	if _, err := parseSnapshot(rec); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if _, err := parseSnapshot(rec[:len(rec)-1]); err == nil {
		t.Fatal("torn snapshot accepted")
	}
	if batches, err := parseSnapshot(nil); err != nil || len(batches) != 0 {
		t.Fatalf("empty snapshot: %v, %d batches", err, len(batches))
	}
}
