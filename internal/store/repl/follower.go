package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"openmfa/internal/obs"
	"openmfa/internal/store"
)

// FollowerOptions configures StartFollower.
type FollowerOptions struct {
	// Addr is the leader's replication address.
	Addr string
	// Dial, when set, replaces net.DialTimeout (faultnet injection).
	Dial func(network, addr string) (net.Conn, error)
	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReconnectMin/Max bound the exponential backoff between attempts.
	// Defaults 50ms / 1s.
	ReconnectMin, ReconnectMax time.Duration
	// ReadTimeout is the per-read deadline; the leader heartbeats at
	// HeartbeatEvery, so a read past this means the link is dead.
	// Default 5s.
	ReadTimeout time.Duration
	// Obs receives the repl_* metrics; Logger the session log.
	Obs    *obs.Registry
	Logger *obs.Logger
}

// Follower replicates a store from a leader: it puts the store into
// follower mode (local Apply refused), then dials, hands the leader its
// last LSN, applies whatever the leader decides it needs — snapshot,
// segment replay, live frames — and acknowledges applied LSNs so the
// leader's MinSync gate can count it. It reconnects with backoff until
// Stop.
type Follower struct {
	st     *store.Store
	opts   FollowerOptions
	logger *obs.Logger

	done chan struct{}
	wg   sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // current connection, closed by Stop

	framesApplied  *obs.Counter
	framesDup      *obs.Counter
	reconnects     *obs.Counter
	snapsInstalled *obs.Counter
	lagG           *obs.Gauge
	epochG         *obs.Gauge
	catchupG       *obs.Gauge
}

// StartFollower switches the store into follower mode and starts the
// replication loop. The store must not be serving local writes; reads
// stay available throughout (a standby otpd can answer health checks).
func StartFollower(st *store.Store, opts FollowerOptions) (*Follower, error) {
	if opts.Addr == "" {
		return nil, errors.New("repl: follower needs a leader address")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 50 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 5 * time.Second
	}
	f := &Follower{
		st:     st,
		opts:   opts,
		logger: opts.Logger,
		done:   make(chan struct{}),
	}
	if opts.Obs != nil {
		f.framesApplied = opts.Obs.Counter("repl_frames_applied_total")
		f.framesDup = opts.Obs.Counter("repl_frames_duplicate_total")
		f.reconnects = opts.Obs.Counter("repl_reconnects_total")
		f.snapsInstalled = opts.Obs.Counter("repl_snapshots_installed_total")
		f.lagG = opts.Obs.Gauge("repl_lag_lsns")
		f.epochG = opts.Obs.Gauge("repl_epoch")
		f.catchupG = opts.Obs.Gauge("repl_catchup_seconds")
	}
	st.SetFollowerMode(true)
	f.epochG.Set(float64(st.Epoch()))
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Stop ends replication and waits for the loop to exit. The store is
// left in follower mode: promotion is StartLeader on the same store
// (which bumps the epoch and re-enables local Apply), so there is no
// window where un-fenced local writes could slip in.
func (f *Follower) Stop() {
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		return
	default:
	}
	close(f.done)
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.opts.ReconnectMin
	for {
		select {
		case <-f.done:
			return
		default:
		}
		conn, err := f.dial()
		if err == nil {
			err = f.serve(conn)
			conn.Close()
		}
		select {
		case <-f.done:
			return
		default:
		}
		if err != nil && f.logger != nil {
			f.logger.Warn("repl follower disconnected", "err", err.Error())
		}
		f.reconnects.Inc()
		select {
		case <-f.done:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

func (f *Follower) dial() (net.Conn, error) {
	dial := f.opts.Dial
	if dial == nil {
		dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, f.opts.DialTimeout)
		}
	}
	conn, err := dial("tcp", f.opts.Addr)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		conn.Close()
		return nil, net.ErrClosed
	default:
	}
	f.conn = conn
	f.mu.Unlock()
	return conn, nil
}

// serve runs one connection: handshake with fencing, then apply the
// leader's stream until it breaks.
func (f *Follower) serve(conn net.Conn) error {
	bc := newBufConn(conn)
	conn.SetWriteDeadline(time.Now().Add(f.opts.ReadTimeout))
	if err := writeHandshake(bc.bw, handshake{epoch: f.st.Epoch(), lsn: f.st.LSN()}); err != nil {
		return err
	}
	if err := bc.bw.Flush(); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	accept, err := readHandshake(bc.br)
	if err != nil {
		return err
	}
	if accept.epoch < f.st.Epoch() {
		// This "leader" is from a fenced-out epoch (a partitioned
		// ex-leader still listening): refuse its frames, keep retrying —
		// operators repoint the farm, not the protocol.
		return fmt.Errorf("%w: leader epoch %d, local %d", errStaleEpoch, accept.epoch, f.st.Epoch())
	}
	if err := f.st.SetEpoch(accept.epoch); err != nil {
		return err
	}
	f.epochG.Set(float64(accept.epoch))

	leaderLSN := accept.lsn
	caughtUp := f.st.LSN() >= leaderLSN
	start := time.Now()
	if caughtUp {
		f.catchupG.Set(0)
	}
	f.lagG.Set(lagOf(leaderLSN, f.st.LSN()))

	var snap *snapshotAssembly
	for {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, _, payload, err := readMsg(bc.br)
		if err != nil {
			return err
		}
		ack := false
		switch typ {
		case msgFrame:
			applied, err := f.st.ApplyReplicated(payload)
			if err != nil {
				// A gap means this follower missed history (ring raced
				// segments on the leader): drop the link and resync from
				// our LSN on reconnect. Anything else is fatal for the
				// connection too.
				return err
			}
			if applied {
				f.framesApplied.Inc()
			} else {
				f.framesDup.Inc()
			}
			ack = true
		case msgSnapBegin:
			if len(payload) != 16 {
				return fmt.Errorf("repl: snapshot begin payload %d bytes", len(payload))
			}
			snap = &snapshotAssembly{
				lsn: binary.LittleEndian.Uint64(payload[:8]),
				kvs: make([]store.KV, 0, int(binary.LittleEndian.Uint64(payload[8:]))),
			}
		case msgSnapKV:
			if snap == nil {
				return errors.New("repl: snapshot kv outside snapshot")
			}
			if err := snap.addChunk(payload); err != nil {
				return err
			}
		case msgSnapEnd:
			if snap == nil {
				return errors.New("repl: snapshot end outside snapshot")
			}
			endLSN, err := readU64(payload)
			if err != nil {
				return err
			}
			if endLSN != snap.lsn {
				return fmt.Errorf("repl: snapshot end lsn %d != begin %d", endLSN, snap.lsn)
			}
			if err := f.st.InstallReplicaSnapshot(snap.lsn, snap.kvs); err != nil {
				if errors.Is(err, store.ErrStaleSnapshot) {
					// We were already past it (duplicate catch-up after a
					// reconnect race) — nothing lost, keep streaming.
					snap = nil
					ack = true
					break
				}
				return err
			}
			f.snapsInstalled.Inc()
			snap = nil
			ack = true
		case msgHeartbeat:
			if leaderLSN, err = readU64(payload); err != nil {
				return err
			}
			ack = true
		default:
			return fmt.Errorf("repl: unexpected message type %d", typ)
		}
		if ack {
			lsn := f.st.LSN()
			f.lagG.Set(lagOf(leaderLSN, lsn))
			if !caughtUp && lsn >= leaderLSN {
				caughtUp = true
				f.catchupG.Set(time.Since(start).Seconds())
			}
			conn.SetWriteDeadline(time.Now().Add(f.opts.ReadTimeout))
			if err := writeMsg(bc.bw, msgAck, 0, u64payload(lsn)); err != nil {
				return err
			}
			if err := bc.bw.Flush(); err != nil {
				return err
			}
		}
	}
}

func lagOf(leaderLSN, localLSN uint64) float64 {
	if localLSN >= leaderLSN {
		return 0
	}
	return float64(leaderLSN - localLSN)
}

// snapshotAssembly accumulates one in-flight snapshot transfer.
type snapshotAssembly struct {
	lsn uint64
	kvs []store.KV
}

func (a *snapshotAssembly) addChunk(p []byte) error {
	if len(p) < 4 {
		return errors.New("repl: short snapshot chunk")
	}
	n := binary.LittleEndian.Uint32(p[:4])
	p = p[4:]
	for i := uint32(0); i < n; i++ {
		k, rest, err := takeBytes(p)
		if err != nil {
			return err
		}
		v, rest, err := takeBytes(rest)
		if err != nil {
			return err
		}
		a.kvs = append(a.kvs, store.KV{Key: string(k), Value: v})
		p = rest
	}
	if len(p) != 0 {
		return fmt.Errorf("repl: %d trailing bytes in snapshot chunk", len(p))
	}
	return nil
}

func takeBytes(p []byte) (val, rest []byte, err error) {
	if len(p) < 4 {
		return nil, nil, errors.New("repl: truncated snapshot entry")
	}
	n := binary.LittleEndian.Uint32(p[:4])
	if uint32(len(p)-4) < n {
		return nil, nil, errors.New("repl: truncated snapshot entry")
	}
	out := make([]byte, n)
	copy(out, p[4:4+n])
	return out, p[4+n:], nil
}
