package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/store"
)

// TestLeaderLagGaugesAndDebugRepl covers the leader-side lag satellite:
// repl_commit_lsn and repl_follower_lag_lsns exported from the leader,
// with per-follower detail on /debug/repl.
func TestLeaderLagGaugesAndDebugRepl(t *testing.T) {
	leakcheck.Check(t)
	lst, err := store.Open(t.TempDir(), store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	lobs := obs.NewRegistry()
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0", Obs: lobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	// Writes with no followers: commit LSN advances, lag stays zero.
	for i := 0; i < 10; i++ {
		if err := lst.Put(fmt.Sprintf("user/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "commit gauge to track LSN", func() bool {
		return lobs.Gauge("repl_commit_lsn").Value() == float64(lst.LSN())
	})
	if v := lobs.Gauge("repl_follower_lag_lsns").Value(); v != 0 {
		t.Fatalf("repl_follower_lag_lsns = %v with no followers, want 0", v)
	}

	fst, err := store.Open(t.TempDir(), store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr(), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	waitFor(t, "follower to converge", func() bool { return fst.LSN() == lst.LSN() })
	waitFor(t, "leader-side lag to drain", func() bool {
		return lobs.Gauge("repl_follower_lag_lsns").Value() == 0
	})

	mux := http.NewServeMux()
	leader.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/repl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CommitLSN != lst.LSN() || st.Epoch != lst.Epoch() {
		t.Errorf("status head = %+v, store lsn=%d epoch=%d", st, lst.LSN(), lst.Epoch())
	}
	if len(st.Followers) != 1 {
		t.Fatalf("status followers = %v, want 1", st.Followers)
	}
	f := st.Followers[0]
	if f.Addr == "" || f.ConnectedAt.IsZero() {
		t.Errorf("follower detail incomplete: %+v", f)
	}
	if f.AckedLSN != lst.LSN() || f.LagLSNs != 0 || st.MaxLagLSNs != 0 {
		t.Errorf("converged follower shows lag: %+v (max %d)", f, st.MaxLagLSNs)
	}
	if f.LastAck.IsZero() {
		t.Errorf("converged follower has no last-ack time")
	}

	// Follower departure: lag gauge must not keep reporting its backlog.
	follower.Stop()
	waitFor(t, "session teardown", func() bool { return leader.Followers() == 0 })
	if err := lst.Put("late", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lag reset after departure", func() bool {
		return lobs.Gauge("repl_follower_lag_lsns").Value() == 0
	})
}
