package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/store"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func assertSameState(t *testing.T, leader, follower *store.Store) {
	t.Helper()
	want, err := leader.Scan("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.Scan("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower has %d keys, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("state mismatch at %d: follower %q=%q, leader %q=%q",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

func TestLiveStreamingReplication(t *testing.T) {
	leakcheck.Check(t)
	lst, err := store.Open(t.TempDir(), store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	lobs := obs.NewRegistry()
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0", Obs: lobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	if got := lst.Epoch(); got != 1 {
		t.Fatalf("leader epoch = %d, want 1 (bumped at promotion)", got)
	}

	fst, err := store.Open(t.TempDir(), store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	for i := 0; i < 20; i++ {
		if err := lst.Put(fmt.Sprintf("user/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lst.Delete("user/07"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower to converge", func() bool { return fst.LSN() == lst.LSN() })
	assertSameState(t, lst, fst)
	if fst.Epoch() != 1 {
		t.Fatalf("follower epoch = %d, want 1 (adopted from leader)", fst.Epoch())
	}
	if v := fobs.Counter("repl_frames_applied_total").Value(); v < 21 {
		t.Fatalf("repl_frames_applied_total = %d, want >= 21", v)
	}
	if v := lobs.Counter("repl_frames_shipped_total").Value(); v < 21 {
		t.Fatalf("repl_frames_shipped_total = %d, want >= 21", v)
	}
	waitFor(t, "lag to drain", func() bool { return fobs.Gauge("repl_lag_lsns").Value() == 0 })

	// Local writes on the follower are refused: the log has one author.
	if err := fst.Put("local", []byte("x")); !errors.Is(err, store.ErrFollower) {
		t.Fatalf("follower-local Put = %v, want ErrFollower", err)
	}
}

func TestFollowerCatchesUpFromSegments(t *testing.T) {
	leakcheck.Check(t)
	lst, err := store.Open(t.TempDir(), store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	// History exists before the leader (and any follower) starts: the
	// ring never saw it, so catch-up must come from the segments.
	for i := 0; i < 30; i++ {
		if err := lst.Put(fmt.Sprintf("user/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	fst := store.OpenMemoryShards(2)
	t.Cleanup(func() { fst.Close() })
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	waitFor(t, "segment catch-up", func() bool { return fst.LSN() == lst.LSN() })
	assertSameState(t, lst, fst)

	// And the stream continues live after the replay.
	if err := lst.Put("after/catchup", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live frame after catch-up", func() bool { return fst.LSN() == lst.LSN() })
	assertSameState(t, lst, fst)
}

func TestFollowerCatchesUpFromSnapshot(t *testing.T) {
	leakcheck.Check(t)
	lst, err := store.Open(t.TempDir(), store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	for i := 0; i < 40; i++ {
		if err := lst.Put(fmt.Sprintf("user/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction truncates the segments: a fresh follower's cursor (0) is
	// below the floor, so only a full snapshot can serve it.
	if err := lst.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := lst.Put("post/compact", []byte("v")); err != nil {
		t.Fatal(err)
	}
	lobs := obs.NewRegistry()
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0", Obs: lobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	fst := store.OpenMemoryShards(4)
	t.Cleanup(func() { fst.Close() })
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	waitFor(t, "snapshot catch-up", func() bool { return fst.LSN() == lst.LSN() })
	assertSameState(t, lst, fst)
	if v := fobs.Counter("repl_snapshots_installed_total").Value(); v != 1 {
		t.Fatalf("repl_snapshots_installed_total = %d, want 1", v)
	}
	if v := lobs.Counter("repl_snapshots_shipped_total").Value(); v != 1 {
		t.Fatalf("repl_snapshots_shipped_total = %d, want 1", v)
	}
}

func TestMinSyncGateFailsClosedWithoutFollowers(t *testing.T) {
	leakcheck.Check(t)
	lst := store.OpenMemoryShards(2)
	t.Cleanup(func() { lst.Close() })
	lobs := obs.NewRegistry()
	leader, err := StartLeader(lst, LeaderOptions{
		Addr:        "127.0.0.1:0",
		MinSync:     1,
		SyncTimeout: 80 * time.Millisecond,
		Obs:         lobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	// No follower connected: the write applies locally but the caller is
	// told the farm did not take it — fail closed.
	if err := lst.Put("k", []byte("v")); !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("Put without followers = %v, want ErrNotReplicated", err)
	}
	if v := lobs.Counter("repl_wait_timeouts_total").Value(); v != 1 {
		t.Fatalf("repl_wait_timeouts_total = %d, want 1", v)
	}

	// Once a follower is acking, the same write path succeeds.
	fst := store.OpenMemoryShards(2)
	t.Cleanup(func() { fst.Close() })
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)
	waitFor(t, "follower session", func() bool { return leader.Followers() == 1 })
	waitFor(t, "initial catch-up ack", func() bool { return fst.LSN() == lst.LSN() })
	if err := lst.Put("k2", []byte("v")); err != nil {
		t.Fatalf("Put with acking follower: %v", err)
	}
	if fst.LSN() != lst.LSN() {
		// MinSync=1 means the ack arrived before Put returned.
		t.Fatalf("synchronous put returned before follower ack: follower %d, leader %d", fst.LSN(), lst.LSN())
	}
}

func TestStaleLeaderFencedByFollower(t *testing.T) {
	leakcheck.Check(t)
	// A fake leader speaking epoch 0 — lower than the follower's persisted
	// epoch. The follower must refuse the session and keep its state.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				bc := newBufConn(c)
				if _, err := readHandshake(bc.br); err != nil {
					return
				}
				// Claim epoch 0 regardless of what the follower said.
				writeHandshake(bc.bw, handshake{epoch: 0, lsn: 999})
				bc.bw.Flush()
				// Try to feed a frame from the stale history.
				writeMsg(bc.bw, msgFrame, 0, store.EncodeFrame(1, []store.Op{{Key: "poison", Value: []byte("x")}}))
				bc.bw.Flush()
				readMsg(bc.br) // wait for the follower to hang up
			}(conn)
		}
	}()

	fst := store.OpenMemoryShards(2)
	t.Cleanup(func() { fst.Close() })
	if err := fst.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: ln.Addr().String(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	waitFor(t, "fenced reconnect attempts", func() bool {
		return fobs.Counter("repl_reconnects_total").Value() >= 2
	})
	if fst.LSN() != 0 || fst.Has("poison") {
		t.Fatal("follower applied frames from a fenced stale leader")
	}
	if fst.Epoch() != 3 {
		t.Fatalf("follower epoch moved to %d after stale leader contact", fst.Epoch())
	}
}

func TestStaleFollowerEpochRefusedByLeader(t *testing.T) {
	leakcheck.Check(t)
	lst := store.OpenMemoryShards(2)
	t.Cleanup(func() { lst.Close() })
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0"}) // epoch 1
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })

	// A follower that has seen epoch 5 proves a newer leader exists
	// somewhere: this leader must refuse to serve rather than fork the
	// farm's history.
	fst := store.OpenMemoryShards(2)
	t.Cleanup(func() { fst.Close() })
	if err := fst.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	if err := lst.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "refused reconnect attempts", func() bool {
		return fobs.Counter("repl_reconnects_total").Value() >= 2
	})
	if fst.LSN() != 0 {
		t.Fatal("leader streamed to a follower from a newer epoch")
	}
}

// TestCatchUpDeterministicUnderDuplicatesAndTornStream is the satellite-4
// property: the same history delivered twice — first torn mid-stream,
// then replayed in full from LSN 0 — leaves the follower in exactly the
// leader's state, with every redelivered frame skipped as a duplicate and
// no partial application at the tear.
func TestCatchUpDeterministicUnderDuplicatesAndTornStream(t *testing.T) {
	leakcheck.Check(t)
	src := store.OpenMemoryShards(4)
	t.Cleanup(func() { src.Close() })
	rec := &frameRecorder{}
	src.SetReplicator(rec)
	for i := 0; i < 24; i++ {
		if err := src.Apply([]store.Op{
			{Key: fmt.Sprintf("user/%02d", i), Value: []byte{byte(i)}},
			{Key: fmt.Sprintf("count/%02d", i%5), Value: []byte{byte(i)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	frames := rec.sorted()

	// Scripted leader: session 1 streams the first 13 frames then drops
	// the link mid-stream; session 2 replays everything from scratch.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for sess := 0; ; sess++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			bc := newBufConn(conn)
			if _, err := readHandshake(bc.br); err != nil {
				conn.Close()
				continue
			}
			writeHandshake(bc.bw, handshake{epoch: 1, lsn: uint64(len(frames))})
			cut := 13
			if sess > 0 {
				cut = len(frames)
			}
			for i := 0; i < cut; i++ {
				writeMsg(bc.bw, msgFrame, 0, frames[i])
			}
			bc.bw.Flush()
			if sess == 0 {
				// Read the 13 acks first so the close is a clean FIN (an
				// RST could discard frames still in the follower's receive
				// queue and make the dup count nondeterministic), then
				// tear the link mid-stream.
				for i := 0; i < cut; i++ {
					if _, _, _, err := readMsg(bc.br); err != nil {
						break
					}
				}
				conn.Close()
			} else {
				writeMsg(bc.bw, msgHeartbeat, 0, u64payload(uint64(len(frames))))
				bc.bw.Flush()
				go func(c net.Conn) { // drain acks until the follower stops
					b := make([]byte, 4096)
					for {
						if _, err := c.Read(b); err != nil {
							c.Close()
							return
						}
					}
				}(conn)
			}
		}
	}()

	fst := store.OpenMemoryShards(2)
	t.Cleanup(func() { fst.Close() })
	fobs := obs.NewRegistry()
	follower, err := StartFollower(fst, FollowerOptions{Addr: ln.Addr().String(), Obs: fobs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Stop)

	waitFor(t, "full redelivered catch-up", func() bool { return fst.LSN() == src.LSN() })
	assertSameState(t, src, fst)
	dups := fobs.Counter("repl_frames_duplicate_total").Value()
	if dups != 13 {
		t.Fatalf("repl_frames_duplicate_total = %d, want 13 (the torn prefix, redelivered)", dups)
	}
	if v := fobs.Counter("repl_frames_applied_total").Value(); v != int64(len(frames)) {
		t.Fatalf("repl_frames_applied_total = %d, want %d (each frame applied exactly once)", v, len(frames))
	}
}

// frameRecorder captures OnCommit frames for scripted-replay tests.
type frameRecorder struct {
	mu     sync.Mutex
	frames []recordedFrame
}

type recordedFrame struct {
	lsn   uint64
	frame []byte
}

func (r *frameRecorder) OnCommit(lsn uint64, shard int, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames = append(r.frames, recordedFrame{lsn: lsn, frame: frame})
}

func (r *frameRecorder) WaitCommitted(uint64) error { return nil }

func (r *frameRecorder) sorted() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]recordedFrame, len(r.frames))
	copy(out, r.frames)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].lsn > out[j].lsn; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	frames := make([][]byte, len(out))
	for i, f := range out {
		frames[i] = f.frame
	}
	return frames
}

func TestFollowerPromotionAfterLeaderLoss(t *testing.T) {
	leakcheck.Check(t)
	lst, err := store.Open(t.TempDir(), store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	leader, err := StartLeader(lst, LeaderOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	fst, err := store.Open(t.TempDir(), store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	follower, err := StartFollower(fst, FollowerOptions{Addr: leader.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := lst.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replication", func() bool { return fst.LSN() == lst.LSN() })

	// Leader dies; the follower is promoted: epoch bumps past the dead
	// leader's, local writes work again, and the promoted node can serve
	// the farm as the new leader.
	leader.Close()
	follower.Stop()
	if err := fst.Put("blocked", nil); !errors.Is(err, store.ErrFollower) {
		t.Fatalf("Put between Stop and promotion = %v, want ErrFollower (no unfenced writes)", err)
	}
	leader2, err := StartLeader(fst, LeaderOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader2.Close() })
	if got := fst.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	if err := fst.Put("promoted", []byte("v")); err != nil {
		t.Fatalf("Put after promotion: %v", err)
	}
	if fst.LSN() != lst.LSN()+1 {
		t.Fatalf("promoted LSN = %d, want %d (continues the shipped log)", fst.LSN(), lst.LSN()+1)
	}
}

func TestRingContiguityAndEviction(t *testing.T) {
	r := newFrameRing(4, 0)
	// Out-of-order arrival: 2 before 1.
	r.add(2, 0, []byte("b"))
	if _, ok, evicted, wait := r.next(0); ok || evicted || wait == nil {
		t.Fatal("lsn 1 absent and unevicted: must wait")
	}
	r.add(1, 0, []byte("a"))
	e, ok, _, _ := r.next(0)
	if !ok || e.lsn != 1 {
		t.Fatalf("next(0) = (%v, %v), want lsn 1", e, ok)
	}
	e, ok, _, _ = r.next(1)
	if !ok || e.lsn != 2 {
		t.Fatalf("next(1) = (%v, %v), want lsn 2", e, ok)
	}
	// Overflow evicts the lowest LSNs.
	for lsn := uint64(3); lsn <= 8; lsn++ {
		r.add(lsn, 0, []byte("x"))
	}
	if _, ok, evicted, _ := r.next(0); ok || !evicted {
		t.Fatal("lsn 1 must be evicted after overflow")
	}
	if e, ok, _, _ := r.next(7); !ok || e.lsn != 8 {
		t.Fatal("highest frames must survive eviction")
	}
	// Frames at or below the eviction floor are dropped on arrival.
	r.add(1, 0, []byte("stale"))
	if _, ok, evicted, _ := r.next(0); ok || !evicted {
		t.Fatal("re-added stale frame must stay evicted")
	}
}
