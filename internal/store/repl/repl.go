// Package repl ships the store's write-ahead log between otpd replicas:
// one leader streams committed, CRC-framed WAL batches (the store's
// format-v2 frames, untouched) over TCP to any number of followers, so
// every member of a RADIUS-fronted otpd farm agrees on consumed OTP
// counters and lockout counts.
//
// The protocol is a thin envelope around the store's own log:
//
//	handshake  follower→leader  "OMRP" | u16 version | u64 epoch | u64 lastLSN
//	handshake  leader→follower  "OMRP" | u16 version | u64 epoch | u64 leaderLSN
//	message    either direction u8 type | u32 shard | u32 len | payload
//
// All integers are little-endian, matching the WAL encoding. A joining
// or lagging follower is caught up from whatever source still covers its
// position — the in-memory frame ring, the on-disk segments, or a full
// snapshot — and then switches to live streaming. Leader changes are
// fenced with a monotonically increasing epoch persisted in the store
// meta file: a promotion bumps the epoch, and both ends refuse a peer
// whose epoch is behind their own, so a partitioned ex-leader can never
// feed stale frames to the farm.
//
// Replication is synchronous when Leader.MinSync > 0: Apply on the
// leader blocks until that many followers have acknowledged the batch's
// LSN (or fails after SyncTimeout — and otpd treats a failed save as a
// failed login, so an OTP is only ever accepted once its consumption is
// replicated). See DESIGN.md §12.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	magic   = "OMRP"
	version = 1

	// Message types. Frame/snapshot/heartbeat flow leader→follower; ack
	// flows follower→leader.
	msgFrame     = 1 // payload: one store WAL frame, shipped verbatim
	msgSnapBegin = 2 // payload: u64 snapshot LSN | u64 total kv count
	msgSnapKV    = 3 // payload: u32 n | n × (u32 klen | key | u32 vlen | value)
	msgSnapEnd   = 4 // payload: u64 snapshot LSN (must match SnapBegin)
	msgHeartbeat = 5 // payload: u64 leader LSN
	msgAck       = 6 // payload: u64 highest LSN applied by the follower

	// maxPayload bounds a single message so a corrupt length prefix
	// cannot allocate unbounded memory.
	maxPayload = 64 << 20

	// snapKVChunk bounds the bytes of kv entries packed into one
	// msgSnapKV message.
	snapKVChunk = 256 << 10
)

// errStaleEpoch fences a peer whose epoch is behind ours.
var errStaleEpoch = errors.New("repl: peer epoch behind local epoch (stale leader fenced)")

// handshake is either side's hello: the sender's fencing epoch plus its
// log position (lastLSN from a follower, current LSN from a leader).
type handshake struct {
	epoch uint64
	lsn   uint64
}

const handshakeLen = 4 + 2 + 8 + 8

func writeHandshake(w io.Writer, h handshake) error {
	var buf [handshakeLen]byte
	copy(buf[:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], version)
	binary.LittleEndian.PutUint64(buf[6:14], h.epoch)
	binary.LittleEndian.PutUint64(buf[14:22], h.lsn)
	_, err := w.Write(buf[:])
	return err
}

func readHandshake(r io.Reader) (handshake, error) {
	var buf [handshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return handshake{}, err
	}
	if string(buf[:4]) != magic {
		return handshake{}, fmt.Errorf("repl: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != version {
		return handshake{}, fmt.Errorf("repl: unsupported protocol version %d", v)
	}
	return handshake{
		epoch: binary.LittleEndian.Uint64(buf[6:14]),
		lsn:   binary.LittleEndian.Uint64(buf[14:22]),
	}, nil
}

const msgHeaderLen = 1 + 4 + 4

// writeMsg frames one message. Callers flush the bufio layer themselves
// so a catch-up burst coalesces into few writes.
func writeMsg(w io.Writer, typ byte, shard uint32, payload []byte) error {
	var hdr [msgHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], shard)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(r io.Reader) (typ byte, shard uint32, payload []byte, err error) {
	var hdr [msgHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxPayload {
		return 0, 0, nil, fmt.Errorf("repl: message of %d bytes exceeds cap", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return hdr[0], binary.LittleEndian.Uint32(hdr[1:5]), payload, nil
}

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func u64payload(v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return buf[:]
}

func readU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("repl: u64 payload is %d bytes", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// bufConn pairs a connection with its buffered reader/writer.
type bufConn struct {
	br *bufio.Reader
	bw *bufio.Writer
}

func newBufConn(rw io.ReadWriter) bufConn {
	return bufConn{br: bufio.NewReaderSize(rw, 64<<10), bw: bufio.NewWriterSize(rw, 64<<10)}
}
