package repl

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// FollowerStatus is one connected follower's view from the leader side.
type FollowerStatus struct {
	Addr        string    `json:"addr"`
	ConnectedAt time.Time `json:"connected_at"`
	AckedLSN    uint64    `json:"acked_lsn"`
	LagLSNs     uint64    `json:"lag_lsns"`
	LastAck     time.Time `json:"last_ack,omitempty"`
}

// Status is the leader's replication state: the repl_commit_lsn /
// repl_follower_lag_lsns gauges with the per-follower detail the
// aggregate hides.
type Status struct {
	Epoch      uint64           `json:"epoch"`
	CommitLSN  uint64           `json:"commit_lsn"`
	MinSync    int              `json:"min_sync"`
	MaxLagLSNs uint64           `json:"max_lag_lsns"`
	Followers  []FollowerStatus `json:"followers"`
}

// Status reports the leader's replication state. The exported
// repl_follower_lag_lsns gauge carries only the max; this is where the
// per-follower breakdown lives.
func (l *Leader) Status() Status {
	lsn := l.st.LSN()
	st := Status{
		Epoch:     l.st.Epoch(),
		CommitLSN: lsn,
		MinSync:   l.minSync,
		Followers: []FollowerStatus{},
	}
	l.mu.Lock()
	for s := range l.sessions {
		fs := FollowerStatus{
			Addr:        s.addr,
			ConnectedAt: s.connectedAt,
			AckedLSN:    s.acked.Load(),
		}
		if lsn > fs.AckedLSN {
			fs.LagLSNs = lsn - fs.AckedLSN
		}
		if ns := s.lastAck.Load(); ns != 0 {
			fs.LastAck = time.Unix(0, ns)
		}
		if fs.LagLSNs > st.MaxLagLSNs {
			st.MaxLagLSNs = fs.LagLSNs
		}
		st.Followers = append(st.Followers, fs)
	}
	l.mu.Unlock()
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].Addr < st.Followers[j].Addr })
	return st
}

// Mount registers GET /debug/repl, serving Status as JSON. Nil-safe.
func (l *Leader) Mount(mux *http.ServeMux) {
	if l == nil {
		return
	}
	mux.HandleFunc("/debug/repl", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(l.Status())
	})
}
