package repl

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/obs"
	"openmfa/internal/store"
)

// LeaderOptions configures StartLeader.
type LeaderOptions struct {
	// Addr is the TCP address followers connect to.
	Addr string
	// Listen, when set, replaces net.Listen (faultnet injection).
	Listen func(network, addr string) (net.Listener, error)
	// MinSync is how many followers must acknowledge a batch before
	// Apply returns. Zero ships asynchronously: local commits never
	// block, and a failover can lose the unshipped tail. With MinSync
	// >= 1 an OTP is only accepted once its consumption is replicated,
	// so a failover can never accept it twice.
	MinSync int
	// SyncTimeout bounds the MinSync wait; past it Apply fails (and
	// otpd fails the login closed). Default 2s.
	SyncTimeout time.Duration
	// RingFrames is the size of the in-memory frame ring used to serve
	// live streams and short catch-ups without touching disk. Default
	// 4096 frames.
	RingFrames int
	// HeartbeatEvery is the idle interval between heartbeats on each
	// follower stream. Default 500ms.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds each buffered flush to a follower, so a
	// blackholed link frees its session instead of wedging it. Default
	// 5s.
	WriteTimeout time.Duration
	// Obs receives the repl_* metrics; Logger the session log.
	Obs    *obs.Registry
	Logger *obs.Logger
}

// Leader accepts follower connections and streams the store's committed
// WAL frames to each. It installs itself as the store's Replicator:
// OnCommit feeds the frame ring, WaitCommitted implements the MinSync
// durability gate.
type Leader struct {
	st          *store.Store
	minSync     int
	syncTimeout time.Duration
	heartbeat   time.Duration
	writeTO     time.Duration
	logger      *obs.Logger
	ln          net.Listener
	ring        *frameRing

	mu        sync.Mutex
	sessions  map[*session]struct{}
	ackNotify chan struct{}
	closed    bool
	closedCh  chan struct{}
	wg        sync.WaitGroup

	framesShipped *obs.Counter
	snapsShipped  *obs.Counter
	acksTotal     *obs.Counter
	waitTimeouts  *obs.Counter
	followersG    *obs.Gauge
	epochG        *obs.Gauge
	commitLSNG    *obs.Gauge
	lagG          *obs.Gauge
}

// ErrNotReplicated is wrapped into the error Apply surfaces when a batch
// missed its MinSync follower acknowledgements: the batch is durable
// locally, but the caller must treat the operation as failed.
var ErrNotReplicated = errors.New("repl: batch not acknowledged by enough followers")

// StartLeader fences out any previous leader by bumping the store's
// persisted epoch, clears follower mode (a promotion is exactly
// StopFollower-then-StartLeader), starts the listener, and installs the
// leader as the store's replicator.
func StartLeader(st *store.Store, opts LeaderOptions) (*Leader, error) {
	if err := st.SetEpoch(st.Epoch() + 1); err != nil {
		return nil, fmt.Errorf("repl: bump epoch: %w", err)
	}
	st.SetFollowerMode(false)
	listen := opts.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen: %w", err)
	}
	l := &Leader{
		st:          st,
		minSync:     opts.MinSync,
		syncTimeout: opts.SyncTimeout,
		heartbeat:   opts.HeartbeatEvery,
		logger:      opts.Logger,
		ln:          ln,
		sessions:    map[*session]struct{}{},
		ackNotify:   make(chan struct{}),
		closedCh:    make(chan struct{}),
	}
	if l.syncTimeout <= 0 {
		l.syncTimeout = 2 * time.Second
	}
	if l.heartbeat <= 0 {
		l.heartbeat = 500 * time.Millisecond
	}
	l.writeTO = opts.WriteTimeout
	if l.writeTO <= 0 {
		l.writeTO = 5 * time.Second
	}
	n := opts.RingFrames
	if n <= 0 {
		n = 4096
	}
	// Everything committed before the leader started is only reachable
	// through segments or a snapshot.
	l.ring = newFrameRing(n, st.LSN())
	if opts.Obs != nil {
		l.framesShipped = opts.Obs.Counter("repl_frames_shipped_total")
		l.snapsShipped = opts.Obs.Counter("repl_snapshots_shipped_total")
		l.acksTotal = opts.Obs.Counter("repl_acks_total")
		l.waitTimeouts = opts.Obs.Counter("repl_wait_timeouts_total")
		l.followersG = opts.Obs.Gauge("repl_followers")
		l.epochG = opts.Obs.Gauge("repl_epoch")
		l.commitLSNG = opts.Obs.Gauge("repl_commit_lsn")
		l.lagG = opts.Obs.Gauge("repl_follower_lag_lsns")
	}
	l.epochG.Set(float64(st.Epoch()))
	st.SetReplicator(l)
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's address (useful with ":0").
func (l *Leader) Addr() string { return l.ln.Addr().String() }

// OnCommit implements store.Replicator: it runs under the logging
// segment's shard lock, so per-segment arrival order is commit order,
// and feeds the frame ring that live sessions consume.
func (l *Leader) OnCommit(lsn uint64, shard int, frame []byte) {
	l.ring.add(lsn, uint32(shard), frame)
	// Cross-shard OnCommit order is not LSN order, so export the store's
	// high-water mark rather than this call's lsn: the gauge stays
	// monotone. Both reads are atomic — safe under the shard lock.
	l.commitLSNG.Set(float64(l.st.LSN()))
}

// WaitCommitted implements store.Replicator: with MinSync == 0 it is a
// no-op; otherwise it blocks until MinSync followers have acknowledged
// lsn, the timeout passes, or the leader closes.
func (l *Leader) WaitCommitted(lsn uint64) error {
	if l.minSync == 0 {
		return nil
	}
	deadline := time.NewTimer(l.syncTimeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return fmt.Errorf("%w: leader closed", ErrNotReplicated)
		}
		n := 0
		for s := range l.sessions {
			if s.acked.Load() >= lsn {
				n++
			}
		}
		notify := l.ackNotify
		l.mu.Unlock()
		if n >= l.minSync {
			return nil
		}
		select {
		case <-notify:
		case <-l.closedCh:
			return fmt.Errorf("%w: leader closed", ErrNotReplicated)
		case <-deadline.C:
			l.waitTimeouts.Inc()
			return fmt.Errorf("%w: %d/%d acks for lsn %d within %v",
				ErrNotReplicated, l.ackCount(lsn), l.minSync, lsn, l.syncTimeout)
		}
	}
}

func (l *Leader) ackCount(lsn uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for s := range l.sessions {
		if s.acked.Load() >= lsn {
			n++
		}
	}
	return n
}

// Followers reports the number of connected follower sessions.
func (l *Leader) Followers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sessions)
}

// Close stops the listener and every session and detaches from the
// store. In-flight WaitCommitted callers fail with ErrNotReplicated.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.closedCh)
	for s := range l.sessions {
		s.conn.Close()
	}
	l.mu.Unlock()
	l.st.SetReplicator(nil)
	err := l.ln.Close()
	l.ring.wake()
	l.wg.Wait()
	return err
}

func (l *Leader) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s := &session{
			l:           l,
			conn:        conn,
			done:        make(chan struct{}),
			addr:        conn.RemoteAddr().String(),
			connectedAt: time.Now(),
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.sessions[s] = struct{}{}
		l.followersG.Set(float64(len(l.sessions)))
		l.mu.Unlock()
		// A fresh follower has acknowledged nothing yet, so the exported
		// lag legitimately jumps to the full backlog until it catches up.
		l.updateLag()
		l.wg.Add(1)
		go s.run()
	}
}

// session is one follower connection: a writer streaming frames and a
// reader collecting acks.
type session struct {
	l           *Leader
	conn        net.Conn
	done        chan struct{}
	acked       atomic.Uint64
	addr        string
	connectedAt time.Time
	lastAck     atomic.Int64 // unix nanos of the newest ack, 0 before any
}

func (s *session) run() {
	defer s.l.wg.Done()
	defer s.close()
	l := s.l
	bc := newBufConn(s.conn)

	hello, err := readHandshake(bc.br)
	if err != nil {
		l.logf("repl: handshake read: %v", err)
		return
	}
	epoch := l.st.Epoch()
	if hello.epoch > epoch {
		// The follower has seen a newer leader: we are the stale one.
		// Refuse — never feed old-epoch frames into the farm.
		l.logf("repl: follower at epoch %d ahead of local %d: closing (stale leader)", hello.epoch, epoch)
		return
	}
	if err := writeHandshake(bc.bw, handshake{epoch: epoch, lsn: l.st.LSN()}); err != nil {
		return
	}
	if err := s.flush(bc); err != nil {
		return
	}

	// Ack reader. Session teardown: reader exits on conn close/error and
	// closes done; the writer exits on done or write error and closes the
	// conn, each side unblocking the other.
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer close(s.done)
		for {
			typ, _, payload, err := readMsg(bc.br)
			if err != nil {
				return
			}
			if typ != msgAck {
				l.logf("repl: unexpected message type %d from follower", typ)
				return
			}
			lsn, err := readU64(payload)
			if err != nil {
				return
			}
			for {
				cur := s.acked.Load()
				if lsn <= cur || s.acked.CompareAndSwap(cur, lsn) {
					break
				}
			}
			s.lastAck.Store(time.Now().UnixNano())
			l.acksTotal.Inc()
			l.mu.Lock()
			notify := l.ackNotify
			l.ackNotify = make(chan struct{})
			l.mu.Unlock()
			close(notify)
			l.updateLag()
		}
	}()

	if err := s.stream(bc, hello.lsn); err != nil && !isClosed(err) {
		l.logf("repl: session ended: %v", err)
	}
}

// stream catches the follower up from cursor and then follows the live
// log, choosing per iteration the cheapest source that still covers the
// cursor: ring, then segments, then a full snapshot.
func (s *session) stream(bc bufConn, cursor uint64) error {
	l := s.l
	idle := time.NewTimer(l.heartbeat)
	defer idle.Stop()
	for {
		select {
		case <-s.done:
			return nil
		default:
		}
		// A follower below the compaction floor can only start from a
		// full snapshot: the segments no longer reach back that far.
		if cursor < l.st.SnapshotLSN() {
			var err error
			if cursor, err = s.sendSnapshot(bc); err != nil {
				return err
			}
			continue
		}
		e, ok, evicted, wait := l.ring.next(cursor)
		switch {
		case ok:
			if err := writeMsg(bc.bw, msgFrame, e.shard, e.frame); err != nil {
				return err
			}
			cursor = e.lsn
			l.framesShipped.Inc()
			// Batch ring drains into one flush: only flush when the next
			// frame is not immediately available.
			if _, ok, _, _ := l.ring.next(cursor); ok {
				continue
			}
			if err := s.flush(bc); err != nil {
				return err
			}
		case evicted:
			frames, err := l.st.SegmentFrames(cursor)
			if err != nil {
				return err
			}
			sent := false
			for _, f := range frames {
				if f.LSN != cursor+1 {
					break // contiguous prefix only; the rest next round
				}
				if err := writeMsg(bc.bw, msgFrame, uint32(f.Shard), f.Frame); err != nil {
					return err
				}
				cursor = f.LSN
				sent = true
				l.framesShipped.Inc()
			}
			if sent {
				if err := s.flush(bc); err != nil {
					return err
				}
			} else {
				// The segments cannot cover the cursor — an in-memory
				// leader has none, or compaction/eviction raced past us.
				// A full snapshot always can.
				if cursor, err = s.sendSnapshot(bc); err != nil {
					return err
				}
			}
		default:
			if err := s.waitOrHeartbeat(bc, wait, idle); err != nil {
				return err
			}
		}
	}
}

// flush drains the buffered writer under a write deadline.
func (s *session) flush(bc bufConn) error {
	s.conn.SetWriteDeadline(time.Now().Add(s.l.writeTO))
	return bc.bw.Flush()
}

func (s *session) waitOrHeartbeat(bc bufConn, wait <-chan struct{}, idle *time.Timer) error {
	if !idle.Stop() {
		select {
		case <-idle.C:
		default:
		}
	}
	idle.Reset(s.l.heartbeat)
	select {
	case <-wait:
		return nil
	case <-s.done:
		return nil
	case <-idle.C:
		if err := writeMsg(bc.bw, msgHeartbeat, 0, u64payload(s.l.st.LSN())); err != nil {
			return err
		}
		return s.flush(bc)
	}
}

// sendSnapshot ships a full consistent cut and returns its LSN as the
// new cursor.
func (s *session) sendSnapshot(bc bufConn) (uint64, error) {
	lsn, kvs, err := s.l.st.ReplicationSnapshot()
	if err != nil {
		return 0, err
	}
	var begin [16]byte
	putU64(begin[:8], lsn)
	putU64(begin[8:], uint64(len(kvs)))
	if err := writeMsg(bc.bw, msgSnapBegin, 0, begin[:]); err != nil {
		return 0, err
	}
	chunk := make([]byte, 0, snapKVChunk)
	var n uint32
	flushChunk := func() error {
		if n == 0 {
			return nil
		}
		var cnt [4]byte
		putU32(cnt[:], n)
		if err := writeMsg(bc.bw, msgSnapKV, 0, append(cnt[:], chunk...)); err != nil {
			return err
		}
		chunk = chunk[:0]
		n = 0
		return nil
	}
	for _, kv := range kvs {
		var lens [4]byte
		putU32(lens[:], uint32(len(kv.Key)))
		chunk = append(chunk, lens[:]...)
		chunk = append(chunk, kv.Key...)
		putU32(lens[:], uint32(len(kv.Value)))
		chunk = append(chunk, lens[:]...)
		chunk = append(chunk, kv.Value...)
		n++
		if len(chunk) >= snapKVChunk {
			if err := flushChunk(); err != nil {
				return 0, err
			}
		}
	}
	if err := flushChunk(); err != nil {
		return 0, err
	}
	if err := writeMsg(bc.bw, msgSnapEnd, 0, u64payload(lsn)); err != nil {
		return 0, err
	}
	if err := s.flush(bc); err != nil {
		return 0, err
	}
	s.l.snapsShipped.Inc()
	return lsn, nil
}

// close tears the session down: closing the conn unblocks the ack
// reader (which owns s.done and is wg-tracked on its own), so nothing
// here waits on it — early handshake-refusal paths never started it.
func (s *session) close() {
	s.conn.Close()
	l := s.l
	l.mu.Lock()
	delete(l.sessions, s)
	l.followersG.Set(float64(len(l.sessions)))
	// A departing follower can only shrink the ack quorum; wake waiters
	// so they re-count (and fail fast once the leader closes).
	notify := l.ackNotify
	l.ackNotify = make(chan struct{})
	l.mu.Unlock()
	close(notify)
	l.updateLag()
}

// updateLag re-exports repl_follower_lag_lsns: the worst follower's
// distance behind the store's committed LSN (0 with no followers).
// Called on every ack, session open, and session close.
func (l *Leader) updateLag() {
	lsn := l.st.LSN()
	l.mu.Lock()
	var max uint64
	for s := range l.sessions {
		if a := s.acked.Load(); lsn > a && lsn-a > max {
			max = lsn - a
		}
	}
	l.mu.Unlock()
	l.lagG.Set(float64(max))
}

func (l *Leader) logf(format string, args ...any) {
	if l.logger != nil {
		l.logger.Warn(fmt.Sprintf(format, args...))
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// frameRing holds recently committed frames keyed by LSN. OnCommit order
// across segments is not global LSN order (each segment's lock serialises
// only its own frames), so the ring tolerates out-of-order arrival and
// sessions consume strictly contiguous LSNs from it.
type frameRing struct {
	mu        sync.Mutex
	cap       int
	entries   map[uint64]ringEntry
	lsns      []uint64 // sorted keys of entries
	evictedTo uint64   // every LSN <= this is gone from the ring
	notify    chan struct{}
}

type ringEntry struct {
	lsn   uint64
	shard uint32
	frame []byte
}

func newFrameRing(capacity int, evictedTo uint64) *frameRing {
	return &frameRing{
		cap:       capacity,
		entries:   map[uint64]ringEntry{},
		evictedTo: evictedTo,
		notify:    make(chan struct{}),
	}
}

func (r *frameRing) add(lsn uint64, shard uint32, frame []byte) {
	r.mu.Lock()
	if lsn <= r.evictedTo {
		r.mu.Unlock()
		return
	}
	if _, dup := r.entries[lsn]; !dup {
		r.entries[lsn] = ringEntry{lsn: lsn, shard: shard, frame: frame}
		pos := sort.Search(len(r.lsns), func(i int) bool { return r.lsns[i] >= lsn })
		r.lsns = append(r.lsns, 0)
		copy(r.lsns[pos+1:], r.lsns[pos:])
		r.lsns[pos] = lsn
		for len(r.lsns) > r.cap {
			low := r.lsns[0]
			r.lsns = r.lsns[1:]
			delete(r.entries, low)
			if low > r.evictedTo {
				r.evictedTo = low
			}
		}
	}
	notify := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(notify)
}

// next looks up cursor+1. Exactly one of the return conditions holds:
// ok (the entry is here), evicted (fall back to segments/snapshot), or
// neither — the frame is still in flight; wait on the returned channel.
func (r *frameRing) next(cursor uint64) (e ringEntry, ok, evicted bool, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	want := cursor + 1
	if e, found := r.entries[want]; found {
		return e, true, false, nil
	}
	if want <= r.evictedTo {
		return ringEntry{}, false, true, nil
	}
	return ringEntry{}, false, false, r.notify
}

// wake unblocks all waiters (leader shutdown).
func (r *frameRing) wake() {
	r.mu.Lock()
	notify := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(notify)
}
