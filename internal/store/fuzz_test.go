package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedFrames returns representative valid frames for the fuzz corpora.
func fuzzSeedFrames() [][]byte {
	return [][]byte{
		encodeBatchRecord(1, []Op{{Key: "token/alice", Value: []byte("sealed-secret")}}),
		encodeBatchRecord(2, []Op{{Key: "acct/bob", Delete: true}}),
		encodeBatchRecord(3, []Op{
			{Key: "a", Value: nil},
			{Key: string([]byte{0, 255, '\n'}), Value: []byte{0, 1, 2}},
			{Key: "a", Delete: true},
		}),
		encodeBatchRecord(0, nil),
	}
}

// FuzzDecodeRecord throws arbitrary bytes at the frame decoder: it must
// never panic, must reject corrupt checksums, and on success must be
// canonical — re-encoding the decoded batch reproduces the input bytes.
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range fuzzSeedFrames() {
		f.Add(rec)
		// Corrupted variants seed the interesting failure paths.
		for _, i := range []int{0, 4, len(rec) / 2, len(rec) - 1} {
			mut := append([]byte(nil), rec...)
			mut[i] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := decodeBatchRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frameLen %d out of range for %d input bytes", n, len(data))
		}
		re := encodeBatchRecord(b.lsn, b.ops)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode→encode not canonical:\n in  %x\n out %x", data[:n], re)
		}
		// And the round trip must decode to the same batch again.
		b2, n2, err := decodeBatchRecord(re)
		if err != nil || n2 != n || b2.lsn != b.lsn || len(b2.ops) != len(b.ops) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
	})
}

// FuzzRecoverWAL feeds arbitrary bytes in as a WAL segment: recovery must
// never panic, must stop at a frame boundary within the input, must be
// idempotent over its own valid prefix, and a real store must open over
// the segment without error.
func FuzzRecoverWAL(f *testing.F) {
	var seg []byte
	for _, rec := range fuzzSeedFrames() {
		seg = append(seg, rec...)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-5])
	f.Add([]byte{})
	mut := append([]byte(nil), seg...)
	mut[10] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, valid := recoverSegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of range", valid)
		}
		again, validAgain := recoverSegment(data[:valid])
		if validAgain != valid || len(again) != len(batches) {
			t.Fatalf("recovery not idempotent: %d/%d then %d/%d",
				len(batches), valid, len(again), validAgain)
		}
		// A store over this segment must open, replaying exactly the
		// committed batches and truncating the rest.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "shard-000.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("open over fuzzed segment: %v", err)
		}
		defer s.Close()
		want := map[string][]byte{}
		for _, b := range batches {
			// Keys hash into shard 0 by construction (one shard).
			for _, op := range b.ops {
				if op.Delete {
					delete(want, op.Key)
				} else {
					want[op.Key] = op.Value
				}
			}
		}
		if s.Len() != len(want) {
			t.Fatalf("replayed %d keys, want %d", s.Len(), len(want))
		}
	})
}
