// Package store implements the embedded key-value store that stands in for
// the paper's MariaDB repository (§3.1): a hash-sharded in-memory map
// backed by per-shard append-only write-ahead logs with snapshot
// compaction.
//
// The OTP back end keeps token records here (with secrets already sealed by
// cryptoutil.Box before they arrive), the IDM keeps account records, and
// the audit log keeps its HMAC chain head. The store offers the operations
// those components need — Put/Get/Delete, prefix scans, and atomic batches
// — with crash recovery via parallel WAL replay.
//
// Keys hash to one of N shards (N a power of two, fixed when the directory
// is created), each with its own RWMutex, map, WAL segment, and snapshot,
// so unrelated users never contend. A batch is framed as a single
// length-prefixed, CRC-checksummed record with a trailing commit marker in
// exactly one segment (the lowest involved shard), which makes Apply
// crash-atomic: recovery truncates a torn tail to the last complete batch
// and never replays a partial one. In Sync mode with GroupCommit,
// concurrent Apply callers coalesce into a single fsync per segment.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/obs"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by all operations after Close.
var ErrClosed = errors.New("store: closed")

// ErrFollower is returned by Apply (and Put/Delete) while the store is in
// follower mode: a replica applies frames shipped from its leader via
// ApplyReplicated and must never mint LSNs of its own, or the two logs
// would diverge.
var ErrFollower = errors.New("store: follower (read-only) mode")

// ErrStaleSnapshot is returned by InstallReplicaSnapshot when the offered
// snapshot is older than the state already present.
var ErrStaleSnapshot = errors.New("store: replica snapshot older than local state")

// MaxShards caps the shard count; more shards than this buys nothing and
// bloats the file-descriptor footprint.
const MaxShards = 256

// Op is a single mutation inside a Batch.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// KV is a key-value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Options configures Open.
type Options struct {
	// Sync forces an fsync before a committed batch is acknowledged.
	// Durable but slow; the rollout simulator runs with Sync off,
	// matching a production database's relaxed-durability benchmarks.
	Sync bool
	// Shards is the shard count, rounded up to a power of two and capped
	// at MaxShards; zero picks a GOMAXPROCS-scaled default. The count is
	// fixed when the data directory is created: reopening an existing
	// directory always uses the persisted count.
	Shards int
	// GroupCommit lets concurrent Apply callers in Sync mode share one
	// fsync per WAL segment instead of paying one each. Per-key ordering
	// is unchanged; only fsync scheduling differs.
	GroupCommit bool
	// Obs, when set, receives store_apply_total, store_fsync_total,
	// store_fsync_batch_size, and store_recovery_seconds.
	Obs *obs.Registry
}

// shard is one lock domain: a map partition plus its WAL segment and
// group-commit state.
type shard struct {
	mu     sync.RWMutex
	data   map[string][]byte
	wal    *os.File
	walBuf *bufio.Writer
	walLen int   // ops logged to this segment since the last compaction
	walErr error // sticky fail-stop error after a WAL write fault

	// Group-commit state. seq numbers batches flushed to this segment
	// (assigned under mu); synced is the highest seq covered by an
	// fsync. A committer whose seq is not yet synced either becomes the
	// sync leader or waits on gcond for one fsync to cover it.
	gmu     sync.Mutex
	gcond   *sync.Cond
	seq     atomic.Uint64
	synced  uint64
	syncing bool
	gerr    error
}

// Replicator observes and gates committed batches; a repl.Leader is the
// production implementation. OnCommit runs under the logging segment's
// shard lock immediately after the frame is flushed, so per-segment hook
// order matches commit order; WaitCommitted runs after the shard locks are
// released and may block (a synchronous leader waits for follower acks). A
// non-nil WaitCommitted error is returned from Apply: the batch is applied
// and durable locally but its farm-level durability is unknown, so callers
// must treat the operation as failed (fail closed).
type Replicator interface {
	OnCommit(lsn uint64, shard int, frame []byte)
	WaitCommitted(lsn uint64) error
}

// replicatorBox wraps the interface so it can live in an atomic.Pointer.
type replicatorBox struct{ r Replicator }

// Store is a sharded WAL-backed KV store safe for concurrent use.
type Store struct {
	dir    string // empty for pure in-memory stores
	sync   bool
	group  bool
	shards []*shard
	mask   uint32
	lsn    atomic.Uint64
	closed atomic.Bool

	// snapFloor is the highest LSN covered by the on-disk snapshots: WAL
	// segments hold exactly the frames with LSN > snapFloor. A follower
	// whose cursor is at or below the floor cannot catch up from segments
	// and needs a full snapshot.
	snapFloor atomic.Uint64
	// epoch is the replication fencing epoch persisted in the meta file;
	// epochMu serialises bump-and-persist so a lower epoch can never land
	// on disk after a higher one.
	epoch   atomic.Uint64
	epochMu sync.Mutex
	// follower blocks local Apply while the store replicates from a leader.
	follower atomic.Bool
	// replicator, when set, observes and gates every committed batch.
	replicator atomic.Pointer[replicatorBox]

	applyTotal *obs.Counter
	fsyncTotal *obs.Counter
	fsyncBatch *obs.Histogram

	// syncDelay, when set (tests only), runs in the group-commit leader
	// after it claims the sync slot and before the fsync, widening the
	// coalescing window deterministically.
	syncDelay func()
	// dirSync, when set (tests only), replaces the data-directory fsync
	// that orders snapshot renames before WAL truncation in Compact.
	dirSync func(dir string) error
	// compactFault, when set (tests only), is consulted before each
	// shard's WAL truncation during compaction to inject failures.
	compactFault func(shard int) error
}

// defaultShards scales the shard count with GOMAXPROCS (4× rounded up to a
// power of two) so the lock domains outnumber the CPUs that can contend.
func defaultShards() int {
	return normalizeShards(4 * runtime.GOMAXPROCS(0))
}

// normalizeShards rounds n up to a power of two in [1, MaxShards]; n <= 0
// selects the default.
func normalizeShards(n int) int {
	if n <= 0 {
		return defaultShards()
	}
	if n > MaxShards {
		return MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newStore(n int, opts Options) *Store {
	s := &Store{
		sync:   opts.Sync,
		group:  opts.GroupCommit,
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
	}
	for i := range s.shards {
		sh := &shard{data: make(map[string][]byte)}
		sh.gcond = sync.NewCond(&sh.gmu)
		s.shards[i] = sh
	}
	if opts.Obs != nil {
		s.applyTotal = opts.Obs.Counter("store_apply_total")
		s.fsyncTotal = opts.Obs.Counter("store_fsync_total")
		s.fsyncBatch = opts.Obs.Histogram("store_fsync_batch_size",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	}
	return s
}

// OpenMemory returns a volatile store with no backing files and the
// default shard count.
func OpenMemory() *Store { return OpenMemoryShards(0) }

// OpenMemoryShards returns a volatile store with n shards (0 = default).
func OpenMemoryShards(n int) *Store {
	return newStore(normalizeShards(n), Options{})
}

// Open loads (or creates) a store in dir, replaying snapshots and WAL
// segments across shards in parallel.
func Open(dir string, opts Options) (*Store, error) {
	t0 := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	n, epoch, err := resolveMeta(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	s := newStore(n, opts)
	s.dir = dir
	s.epoch.Store(epoch)
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i, sh := range s.shards {
		f, err := os.OpenFile(s.walPath(i), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.wal = f
		sh.walBuf = bufio.NewWriter(f)
	}
	if opts.Obs != nil {
		opts.Obs.Gauge("store_recovery_seconds").Set(time.Since(t0).Seconds())
	}
	return s, nil
}

const metaHeader = "openmfa-store v2"

func metaPath(dir string) string { return filepath.Join(dir, "meta") }

// syncDir fsyncs a directory so preceding renames inside it are durable.
// Without this, a crash can lose a rename that later operations (a WAL
// truncate) already assumed was on disk.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) syncDataDir() error {
	if s.dirSync != nil {
		return s.dirSync(s.dir)
	}
	return syncDir(s.dir)
}

// writeMeta atomically rewrites the meta file (write-temp, rename, fsync
// the directory).
func writeMeta(dir string, shards int, epoch uint64) error {
	body := metaHeader + "\nshards " + strconv.Itoa(shards) + "\nepoch " + strconv.FormatUint(epoch, 10) + "\n"
	tmp := metaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, metaPath(dir)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// resolveMeta reads the persisted shard count and replication epoch, or
// persists the requested count for a fresh directory. The count is
// immutable after creation because keys hash to shards: rehashing on
// reopen would strand records in the wrong segment. Meta files written
// before the epoch line existed parse as epoch 0.
func resolveMeta(dir string, requested int) (int, uint64, error) {
	b, err := os.ReadFile(metaPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		n := normalizeShards(requested)
		if err := writeMeta(dir, n, 0); err != nil {
			return 0, 0, err
		}
		return n, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 2 || len(lines) > 3 || lines[0] != metaHeader || !strings.HasPrefix(lines[1], "shards ") {
		return 0, 0, fmt.Errorf("store: corrupt meta file %s", metaPath(dir))
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[1], "shards "))
	if err != nil || n < 1 || n > MaxShards || n&(n-1) != 0 {
		return 0, 0, fmt.Errorf("store: corrupt meta file %s: bad shard count", metaPath(dir))
	}
	var epoch uint64
	if len(lines) == 3 {
		if !strings.HasPrefix(lines[2], "epoch ") {
			return 0, 0, fmt.Errorf("store: corrupt meta file %s: bad epoch line", metaPath(dir))
		}
		epoch, err = strconv.ParseUint(strings.TrimPrefix(lines[2], "epoch "), 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("store: corrupt meta file %s: bad epoch", metaPath(dir))
		}
	}
	return n, epoch, nil
}

// Epoch returns the replication fencing epoch (0 until a leader bumps it).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// SetEpoch persists a new fencing epoch. Epochs are monotonic: lowering
// one is an error, re-asserting the current value is a no-op. On-disk
// stores survive restarts with the epoch intact (it lives in the meta
// file); in-memory stores keep it for the process lifetime only.
func (s *Store) SetEpoch(e uint64) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	cur := s.epoch.Load()
	if e < cur {
		return fmt.Errorf("store: epoch %d below current %d", e, cur)
	}
	if e == cur {
		return nil
	}
	if s.dir != "" {
		if err := writeMeta(s.dir, len(s.shards), e); err != nil {
			return err
		}
	}
	s.epoch.Store(e)
	return nil
}

// SetFollowerMode switches local Apply on (false) or off (true). While a
// follower, only ApplyReplicated mutates the store.
func (s *Store) SetFollowerMode(on bool) { s.follower.Store(on) }

// FollowerMode reports whether local Apply is blocked.
func (s *Store) FollowerMode() bool { return s.follower.Load() }

// SetReplicator installs (or, with nil, removes) the replication observer
// consulted by Apply.
func (s *Store) SetReplicator(r Replicator) {
	if r == nil {
		s.replicator.Store(nil)
		return
	}
	s.replicator.Store(&replicatorBox{r: r})
}

// LSN returns the highest committed log sequence number.
func (s *Store) LSN() uint64 { return s.lsn.Load() }

// SnapshotLSN returns the compaction floor: the highest LSN covered by
// the on-disk snapshots. WAL segments hold exactly the frames above it.
func (s *Store) SnapshotLSN() uint64 { return s.snapFloor.Load() }

func (s *Store) walPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.wal", i))
}

func (s *Store) snapshotPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.kv", i))
}

// WALPaths lists the per-shard WAL segment paths (nil for in-memory
// stores); exposed for operational tooling and the crash-recovery harness.
func (s *Store) WALPaths() []string {
	if s.dir == "" {
		return nil
	}
	out := make([]string, len(s.shards))
	for i := range s.shards {
		out[i] = s.walPath(i)
	}
	return out
}

// NumShards reports the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Err reports the first shard's sticky WAL fail-stop error, nil while
// every shard is healthy. A non-nil result is permanent for the life of
// the process — writes to that shard fail closed — which makes Err a
// natural incident trigger: the moment it trips, operators need the
// profile ring from just before the fault, not after a restart.
func (s *Store) Err() error {
	if s == nil {
		return nil
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		err := sh.walErr
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardFor reports which shard holds key; exposed for tooling and tests.
func (s *Store) ShardFor(key string) int { return s.shardIndex(key) }

// shardIndex hashes key to a shard with FNV-1a.
func (s *Store) shardIndex(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h & s.mask)
}

func (s *Store) shardFor(key string) *shard { return s.shards[s.shardIndex(key)] }

// recover loads every shard's snapshot and WAL segment in parallel, merges
// the decoded batches by LSN, and applies the merged op stream back across
// the shards in parallel (each key lands in exactly one shard, so per-key
// order is preserved).
func (s *Store) recover() error {
	n := len(s.shards)
	segBatches := make([][]walBatch, n)
	snapLSNs := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			segBatches[i], snapLSNs[i], errs[i] = s.recoverShard(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge segments by LSN. Each segment is already LSN-ascending
	// (appends within a segment serialize on the shard lock), so a
	// global sort is a merge of sorted runs.
	var all []walBatch
	for _, bs := range segBatches {
		all = append(all, bs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })

	perShard := make([][]Op, n)
	// The LSN clock resumes from the highest LSN seen anywhere: WAL
	// frames, or — after a compaction emptied the segments — the snapshot
	// header frames that record where the clock stood at compact time.
	// Without the header, a compact+reopen would reissue LSNs from 1.
	var maxLSN, floor uint64
	for _, l := range snapLSNs {
		if l > maxLSN {
			maxLSN = l
		}
		if l > floor {
			floor = l
		}
	}
	for _, b := range all {
		if b.lsn > maxLSN {
			maxLSN = b.lsn
		}
		for _, op := range b.ops {
			d := s.shardIndex(op.Key)
			perShard[d] = append(perShard[d], op)
		}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			applyOps(s.shards[i].data, perShard[i])
		}(i)
	}
	wg.Wait()
	s.lsn.Store(maxLSN)
	s.snapFloor.Store(floor)
	return nil
}

// recoverShard loads shard i's snapshot (strict) and WAL segment
// (truncating a torn tail), returning the segment's committed batches and
// the LSN recorded in the snapshot header frame (0 for headerless
// snapshots written before the LSN fix, and for absent snapshots). Only
// this goroutine touches shard i during recovery.
func (s *Store) recoverShard(i int) ([]walBatch, uint64, error) {
	sh := s.shards[i]
	var snapLSN uint64
	snap, err := os.ReadFile(s.snapshotPath(i))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if len(snap) > 0 {
		recs, err := parseSnapshot(snap)
		if err != nil {
			return nil, 0, err
		}
		for _, b := range recs {
			if b.lsn > snapLSN {
				snapLSN = b.lsn
			}
			applyOps(sh.data, b.ops)
		}
	}
	wal, err := os.ReadFile(s.walPath(i))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	batches, valid := recoverSegment(wal)
	if valid < len(wal) {
		// Torn tail from a crash mid-append: drop the incomplete frame
		// on disk too, so the next append starts at a frame boundary.
		if err := os.Truncate(s.walPath(i), int64(valid)); err != nil {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
	}
	for _, b := range batches {
		sh.walLen += len(b.ops)
	}
	return batches, snapLSN, nil
}

func applyOps(data map[string][]byte, ops []Op) {
	for _, op := range ops {
		if op.Delete {
			delete(data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			data[op.Key] = v
		}
	}
}

// Get returns the value for key. The returned slice is a copy.
func (s *Store) Get(key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	v, ok := sh.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether key exists (false after Close).
func (s *Store) Has(key string) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return false
	}
	_, ok := sh.data[key]
	return ok
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Key: key, Value: value}})
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Key: key, Delete: true}})
}

// Apply commits a batch of operations atomically: either every op is
// visible and logged, or none is — including across a crash, because the
// whole batch is one checksummed WAL frame. Batches spanning shards lock
// the involved shards in ascending order and log to the lowest one.
func (s *Store) Apply(batch []Op) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.follower.Load() {
		return ErrFollower
	}
	if len(batch) == 0 {
		return nil
	}

	// Distinct involved shards, ascending (insertion sort: batches are
	// small and usually single-key).
	var idxBuf [8]int
	idxs := idxBuf[:0]
	for _, op := range batch {
		d := s.shardIndex(op.Key)
		pos := sort.SearchInts(idxs, d)
		if pos < len(idxs) && idxs[pos] == d {
			continue
		}
		idxs = append(idxs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		idxs[pos] = d
	}
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	unlock := func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.shards[idxs[j]].mu.Unlock()
		}
	}
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}

	seg := s.shards[idxs[0]]
	var mySeq, lsn uint64
	repl := s.replicator.Load()
	if s.dir != "" {
		if seg.walErr != nil {
			err := seg.walErr
			unlock()
			return err
		}
		lsn = s.lsn.Add(1)
		rec := encodeBatchRecord(lsn, batch)
		if _, err := seg.walBuf.Write(rec); err != nil {
			seg.walErr = fmt.Errorf("store: wal append: %w", err)
			err = seg.walErr
			unlock()
			return err
		}
		if err := seg.walBuf.Flush(); err != nil {
			seg.walErr = fmt.Errorf("store: wal flush: %w", err)
			err = seg.walErr
			unlock()
			return err
		}
		if s.sync && !s.group {
			if err := seg.wal.Sync(); err != nil {
				seg.walErr = fmt.Errorf("store: wal sync: %w", err)
				err = seg.walErr
				unlock()
				return err
			}
			s.fsyncTotal.Inc()
			s.fsyncBatch.Observe(1)
		}
		seg.walLen += len(batch)
		if s.sync && s.group {
			mySeq = seg.seq.Add(1)
		}
		if repl != nil {
			// Under the segment lock, so per-segment hook order matches
			// commit order; rec is freshly allocated and never reused.
			repl.r.OnCommit(lsn, idxs[0], rec)
		}
	} else {
		lsn = s.lsn.Add(1)
		if repl != nil {
			repl.r.OnCommit(lsn, idxs[0], encodeBatchRecord(lsn, batch))
		}
	}
	for _, op := range batch {
		sh := s.shardFor(op.Key)
		if op.Delete {
			delete(sh.data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			sh.data[op.Key] = v
		}
	}
	unlock()
	s.applyTotal.Inc()
	if s.dir != "" && s.sync && s.group {
		if err := s.waitGroupSync(seg, mySeq); err != nil {
			return err
		}
	}
	if repl != nil {
		// Outside every lock: a synchronous leader may block here waiting
		// for follower acks. An error means farm-level durability is
		// unknown — the batch is applied locally, but the caller must
		// treat the operation as failed.
		return repl.r.WaitCommitted(lsn)
	}
	return nil
}

// waitGroupSync blocks until an fsync covers mySeq. The first committer to
// arrive while no fsync is running becomes the leader and syncs on behalf
// of everything flushed so far; the rest wait on the condition variable.
// Shard locks are NOT held here, so readers and later writers proceed
// while the disk works.
func (s *Store) waitGroupSync(sh *shard, mySeq uint64) error {
	sh.gmu.Lock()
	defer sh.gmu.Unlock()
	for sh.synced < mySeq {
		if sh.gerr != nil {
			return sh.gerr
		}
		if sh.syncing {
			sh.gcond.Wait()
			continue
		}
		sh.syncing = true
		sh.gmu.Unlock()
		if s.syncDelay != nil {
			s.syncDelay()
		}
		target := sh.seq.Load() // every batch ≤ target is flushed to the OS
		err := sh.wal.Sync()
		sh.gmu.Lock()
		sh.syncing = false
		if err != nil {
			// Fail-stop: a lost fsync means unknown durability, so
			// every subsequent committer sees the fault.
			sh.gerr = fmt.Errorf("store: wal sync: %w", err)
		} else {
			s.fsyncTotal.Inc()
			s.fsyncBatch.Observe(float64(target - sh.synced))
			sh.synced = target
		}
		sh.gcond.Broadcast()
	}
	return nil
}

// ErrReplGap is returned by ApplyReplicated when a frame skips ahead of
// the next expected LSN; the follower must resynchronise (segments or
// snapshot) instead of applying a log with a hole.
var ErrReplGap = errors.New("store: replicated frame leaves an LSN gap")

// ApplyReplicated applies one leader-shipped WAL frame. It is the follower
// half of log shipping: the frame's ops are applied under the involved
// shard locks and the frame bytes are appended verbatim to the local
// segment, so a follower's directory recovers exactly like a leader's.
//
// Delivery is idempotent and prefix-consistent: a frame at or below the
// local LSN is skipped (applied=false, nil error — a duplicate from a
// reconnect or a re-fed segment stream), the frame at LSN+1 is applied,
// and a frame beyond LSN+1 is rejected with ErrReplGap (leader logs are
// gapless, so a gap means this follower missed history and must catch up
// again). Works in follower mode — that guard only blocks local Apply.
func (s *Store) ApplyReplicated(frame []byte) (applied bool, err error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	b, n, err := decodeBatchRecord(frame)
	if err != nil {
		return false, err
	}
	if n != len(frame) {
		return false, fmt.Errorf("store: %d trailing bytes after replicated frame", len(frame)-n)
	}
	if len(b.ops) == 0 {
		return false, errors.New("store: replicated frame carries no ops")
	}
	if b.lsn <= s.lsn.Load() {
		return false, nil // duplicate delivery
	}

	var idxBuf [8]int
	idxs := idxBuf[:0]
	for _, op := range b.ops {
		d := s.shardIndex(op.Key)
		pos := sort.SearchInts(idxs, d)
		if pos < len(idxs) && idxs[pos] == d {
			continue
		}
		idxs = append(idxs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		idxs[pos] = d
	}
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	unlock := func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.shards[idxs[j]].mu.Unlock()
		}
	}
	if s.closed.Load() {
		unlock()
		return false, ErrClosed
	}
	switch cur := s.lsn.Load(); {
	case b.lsn <= cur:
		unlock()
		return false, nil
	case b.lsn != cur+1:
		unlock()
		return false, fmt.Errorf("%w: frame lsn %d, local lsn %d", ErrReplGap, b.lsn, cur)
	}

	seg := s.shards[idxs[0]]
	var mySeq uint64
	repl := s.replicator.Load()
	if s.dir != "" {
		if seg.walErr != nil {
			err := seg.walErr
			unlock()
			return false, err
		}
		if _, err := seg.walBuf.Write(frame); err != nil {
			seg.walErr = fmt.Errorf("store: wal append: %w", err)
			err = seg.walErr
			unlock()
			return false, err
		}
		if err := seg.walBuf.Flush(); err != nil {
			seg.walErr = fmt.Errorf("store: wal flush: %w", err)
			err = seg.walErr
			unlock()
			return false, err
		}
		if s.sync && !s.group {
			if err := seg.wal.Sync(); err != nil {
				seg.walErr = fmt.Errorf("store: wal sync: %w", err)
				err = seg.walErr
				unlock()
				return false, err
			}
			s.fsyncTotal.Inc()
			s.fsyncBatch.Observe(1)
		}
		seg.walLen += len(b.ops)
		if s.sync && s.group {
			mySeq = seg.seq.Add(1)
		}
	}
	if repl != nil {
		// Chained replication: a follower that is itself a leader for
		// further replicas re-ships the frame (asynchronously — the
		// WaitCommitted gate is only consulted for local Apply).
		fc := make([]byte, len(frame))
		copy(fc, frame)
		repl.r.OnCommit(b.lsn, idxs[0], fc)
	}
	s.applyOpsSharded(b.ops)
	s.lsn.Store(b.lsn)
	unlock()
	s.applyTotal.Inc()
	if s.dir != "" && s.sync && s.group {
		if err := s.waitGroupSync(seg, mySeq); err != nil {
			return false, err
		}
	}
	return true, nil
}

// applyOpsSharded applies ops routing each key to its shard (caller
// holds the involved shard locks).
func (s *Store) applyOpsSharded(ops []Op) {
	for _, op := range ops {
		sh := s.shards[s.shardIndex(op.Key)]
		if op.Delete {
			delete(sh.data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			sh.data[op.Key] = v
		}
	}
}

// ReplicationSnapshot captures a consistent cut of the whole store: the
// LSN and every key-value pair as of a moment when no Apply was in
// flight (all shard read locks held). Leaders use it to bootstrap a
// follower that is too far behind the segments.
func (s *Store) ReplicationSnapshot() (lsn uint64, kvs []KV, err error) {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	defer func() {
		for j := len(s.shards) - 1; j >= 0; j-- {
			s.shards[j].mu.RUnlock()
		}
	}()
	if s.closed.Load() {
		return 0, nil, ErrClosed
	}
	lsn = s.lsn.Load()
	total := 0
	for _, sh := range s.shards {
		total += len(sh.data)
	}
	kvs = make([]KV, 0, total)
	for _, sh := range s.shards {
		for k, v := range sh.data {
			val := make([]byte, len(v))
			copy(val, v)
			kvs = append(kvs, KV{Key: k, Value: val})
		}
	}
	return lsn, kvs, nil
}

// ReplFrame is one committed WAL frame read back from a segment: the raw
// frame bytes plus its decoded LSN and originating shard.
type ReplFrame struct {
	LSN   uint64
	Shard int
	Frame []byte
}

// SegmentFrames returns every committed frame with LSN > sinceLSN still
// present in the WAL segments, sorted by LSN (nil for in-memory stores).
// Combined with SnapshotLSN it is the catch-up source for a lagging
// follower: segments hold exactly the frames above the compaction floor.
func (s *Store) SegmentFrames(sinceLSN uint64) ([]ReplFrame, error) {
	if s.dir == "" {
		return nil, nil
	}
	var out []ReplFrame
	for i, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return nil, ErrClosed
		}
		// Appends to this segment and compaction both need this shard's
		// write lock, so the file is frame-complete and stable here.
		data, err := os.ReadFile(s.walPath(i))
		sh.mu.RUnlock()
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("store: %w", err)
		}
		off := 0
		for off < len(data) {
			b, n, err := decodeBatchRecord(data[off:])
			if err != nil {
				return nil, fmt.Errorf("store: segment %d corrupt at offset %d: %w", i, off, err)
			}
			if b.lsn > sinceLSN {
				out = append(out, ReplFrame{LSN: b.lsn, Shard: i, Frame: data[off : off+n]})
			}
			off += n
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out, nil
}

// InstallReplicaSnapshot replaces the entire store state with a leader's
// ReplicationSnapshot cut: state becomes exactly kvs, the LSN clock jumps
// to lsn, the snapshots are rewritten on disk and the segments truncated
// (so a follower restart recovers the installed state). Installing a
// snapshot older than local state is refused with ErrStaleSnapshot.
func (s *Store) InstallReplicaSnapshot(lsn uint64, kvs []KV) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for j := len(s.shards) - 1; j >= 0; j-- {
			s.shards[j].mu.Unlock()
		}
	}()
	if s.closed.Load() {
		return ErrClosed
	}
	if lsn < s.lsn.Load() {
		return fmt.Errorf("%w: snapshot lsn %d, local lsn %d", ErrStaleSnapshot, lsn, s.lsn.Load())
	}
	for _, sh := range s.shards {
		if sh.walErr != nil {
			return sh.walErr
		}
		sh.data = make(map[string][]byte, len(sh.data))
	}
	s.applyOpsSharded(kvsToOps(kvs))
	s.lsn.Store(lsn)
	if err := s.compactLocked(); err != nil {
		return err
	}
	s.snapFloor.Store(lsn)
	return nil
}

func kvsToOps(kvs []KV) []Op {
	ops := make([]Op, len(kvs))
	for i, kv := range kvs {
		ops[i] = Op{Key: kv.Key, Value: kv.Value}
	}
	return ops
}

// Scan returns all pairs whose key starts with prefix, sorted by key. The
// per-shard results are collected under each shard's read lock and merged
// (each shard's slice is sorted; keys never repeat across shards).
func (s *Store) Scan(prefix string) ([]KV, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	parts := make([][]KV, 0, len(s.shards))
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return nil, ErrClosed
		}
		var part []KV
		for k, v := range sh.data {
			if strings.HasPrefix(k, prefix) {
				val := make([]byte, len(v))
				copy(val, v)
				part = append(part, KV{Key: k, Value: val})
			}
		}
		sh.mu.RUnlock()
		if len(part) > 0 {
			sort.Slice(part, func(i, j int) bool { return part[i].Key < part[j].Key })
			parts = append(parts, part)
			total += len(part)
		}
	}
	return mergeKVs(parts, total), nil
}

// mergeKVs k-way merges sorted per-shard runs into one sorted slice.
func mergeKVs(parts [][]KV, total int) []KV {
	if len(parts) == 1 {
		return parts[0]
	}
	var out []KV
	if total > 0 {
		out = make([]KV, 0, total)
	}
	idx := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			if idx[i] < len(p) && (best < 0 || p[idx[i]].Key < parts[best][idx[best]].Key) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
}

// Count returns the number of keys with the given prefix (0 after Close).
func (s *Store) Count(prefix string) int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		for k := range sh.data {
			if strings.HasPrefix(k, prefix) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Len returns the total number of keys (0 after Close).
func (s *Store) Len() int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// WALRecords reports the number of WAL ops accumulated since the last
// compaction, summed across segments (0 for in-memory stores and after
// Close); exposed for compaction policies and tests.
func (s *Store) WALRecords() int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		n += sh.walLen
		sh.mu.RUnlock()
	}
	return n
}

// snapshotChunk bounds the ops per snapshot frame so a snapshot streams as
// modest records rather than one giant allocation.
const snapshotChunk = 1024

// Compact writes a fresh snapshot of every shard and truncates the WAL
// segments. Readers and writers are blocked for the duration.
func (s *Store) Compact() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for j := len(s.shards) - 1; j >= 0; j-- {
			s.shards[j].mu.Unlock()
		}
	}()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked is Compact's body; the caller holds every shard lock (so
// s.lsn is stable — no Apply can be in flight).
func (s *Store) compactLocked() error {
	if s.dir == "" {
		return nil // in-memory: nothing to do
	}
	lsn := s.lsn.Load()
	for i, sh := range s.shards {
		if sh.walErr != nil {
			return sh.walErr
		}
		if err := s.writeSnapshot(i, sh, lsn); err != nil {
			return err
		}
	}
	// Make the renames themselves durable before touching the segments: a
	// crash here must never leave a truncated WAL next to a directory
	// entry that still points at the old snapshot.
	if err := s.syncDataDir(); err != nil {
		return fmt.Errorf("store: compact: sync dir: %w", err)
	}
	// Every snapshot is durable; now the segments can drop. A truncation
	// failure is fail-stop for its shard, exactly like an append or fsync
	// failure: the segment is in an unknown half-reset state, so later
	// Applies must not append to it.
	for i, sh := range s.shards {
		if s.compactFault != nil {
			if err := s.compactFault(i); err != nil {
				sh.walErr = fmt.Errorf("store: compact: %w", err)
				return sh.walErr
			}
		}
		if err := sh.wal.Truncate(0); err != nil {
			sh.walErr = fmt.Errorf("store: compact: %w", err)
			return sh.walErr
		}
		if _, err := sh.wal.Seek(0, 0); err != nil {
			sh.walErr = fmt.Errorf("store: compact: %w", err)
			return sh.walErr
		}
		sh.walBuf.Reset(sh.wal)
		sh.walLen = 0
	}
	s.snapFloor.Store(lsn)
	return nil
}

// writeSnapshot persists shard i's map as chunked snapshot frames via
// write-to-temp, fsync, rename. The first frame is a zero-op header
// carrying lsn — the position of the LSN clock at compaction — so a
// reopen after the segments are truncated resumes the clock instead of
// reissuing LSNs from 1.
func (s *Store) writeSnapshot(i int, sh *shard, lsn uint64) error {
	tmp := s.snapshotPath(i) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(encodeBatchRecord(lsn, nil)); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	keys := make([]string, 0, len(sh.data))
	for k := range sh.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for off := 0; off < len(keys); off += snapshotChunk {
		end := off + snapshotChunk
		if end > len(keys) {
			end = len(keys)
		}
		ops := make([]Op, 0, end-off)
		for _, k := range keys[off:end] {
			ops = append(ops, Op{Key: k, Value: sh.data[k]})
		}
		if _, err := w.Write(encodeBatchRecord(0, ops)); err != nil {
			f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath(i)); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// closeFiles closes any WAL files opened so far (Open error paths).
func (s *Store) closeFiles() {
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.Close()
		}
	}
}

// Close flushes, fsyncs, and closes every WAL segment. Further operations
// return ErrClosed (or zero for the counting reads). In-flight group
// commits are satisfied by Close's final fsync.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.wal != nil {
			if err := sh.walBuf.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.gmu.Lock()
			for sh.syncing {
				sh.gcond.Wait()
			}
			target := sh.seq.Load()
			if err := sh.wal.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.wal.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.synced = target
			if sh.gerr == nil {
				sh.gerr = ErrClosed
			}
			sh.gcond.Broadcast()
			sh.gmu.Unlock()
		}
		sh.data = nil
		sh.mu.Unlock()
	}
	return firstErr
}
