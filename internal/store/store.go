// Package store implements the embedded key-value store that stands in for
// the paper's MariaDB repository (§3.1): a strictly ordered in-memory map
// backed by an append-only write-ahead log with snapshot compaction.
//
// The OTP back end keeps token records here (with secrets already sealed by
// cryptoutil.Box before they arrive), the IDM keeps account records, and
// the audit log keeps its HMAC chain head. The store offers the operations
// those components need — Put/Get/Delete, prefix scans, and atomic batches
// — with crash recovery via WAL replay.
package store

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by all operations after Close.
var ErrClosed = errors.New("store: closed")

// Op is a single mutation inside a Batch.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// Store is a WAL-backed ordered KV store safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	data   map[string][]byte
	dir    string // empty for pure in-memory stores
	wal    *os.File
	walBuf *bufio.Writer
	walLen int // records since last snapshot
	sync   bool
	closed bool
}

// Options configures Open.
type Options struct {
	// Sync forces an fsync after every committed record. Durable but
	// slow; the rollout simulator runs with Sync off, matching a
	// production database's group-commit behaviour.
	Sync bool
}

// OpenMemory returns a volatile store with no backing files.
func OpenMemory() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Open loads (or creates) a store in dir, replaying snapshot + WAL.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{data: make(map[string][]byte), dir: dir, sync: opts.Sync}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walBuf = bufio.NewWriter(f)
	return s, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.kv") }

func (s *Store) loadSnapshot() error {
	f, err := os.Open(s.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.readRecords(f, false)
}

func (s *Store) replayWAL() error {
	f, err := os.Open(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.readRecords(f, true)
}

// readRecords applies "P key value" / "D key" lines. A torn final line
// (crash mid-append) is tolerated in WAL mode and truncated away logically.
func (s *Store) readRecords(r io.Reader, tolerateTorn bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		rec := sc.Text()
		if rec == "" {
			continue
		}
		op, key, val, err := decodeRecord(rec)
		if err != nil {
			if tolerateTorn {
				// Assume crash wrote a partial record; ignore the
				// remainder of the log.
				return nil
			}
			return fmt.Errorf("store: corrupt record at line %d: %w", line, err)
		}
		if op == 'D' {
			delete(s.data, key)
		} else {
			s.data[key] = val
		}
		s.walLen++
	}
	return sc.Err()
}

func encodeRecord(op Op) string {
	k := base64.RawStdEncoding.EncodeToString([]byte(op.Key))
	if op.Delete {
		return "D " + k
	}
	return "P " + k + " " + base64.RawStdEncoding.EncodeToString(op.Value)
}

func decodeRecord(rec string) (op byte, key string, val []byte, err error) {
	parts := strings.Split(rec, " ")
	switch {
	case len(parts) == 2 && parts[0] == "D":
		kb, err := base64.RawStdEncoding.DecodeString(parts[1])
		if err != nil {
			return 0, "", nil, err
		}
		return 'D', string(kb), nil, nil
	case len(parts) == 3 && parts[0] == "P":
		kb, err := base64.RawStdEncoding.DecodeString(parts[1])
		if err != nil {
			return 0, "", nil, err
		}
		vb, err := base64.RawStdEncoding.DecodeString(parts[2])
		if err != nil {
			return 0, "", nil, err
		}
		return 'P', string(kb), vb, nil
	default:
		return 0, "", nil, fmt.Errorf("bad record %q", rec)
	}
}

// Get returns the value for key. The returned slice is a copy.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[key]
	return ok
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Key: key, Value: value}})
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Key: key, Delete: true}})
}

// Apply commits a batch of operations atomically: either every op is
// visible and logged, or none is.
func (s *Store) Apply(batch []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.walBuf != nil {
		for _, op := range batch {
			if _, err := s.walBuf.WriteString(encodeRecord(op) + "\n"); err != nil {
				return fmt.Errorf("store: wal append: %w", err)
			}
		}
		if err := s.walBuf.Flush(); err != nil {
			return fmt.Errorf("store: wal flush: %w", err)
		}
		if s.sync {
			if err := s.wal.Sync(); err != nil {
				return fmt.Errorf("store: wal sync: %w", err)
			}
		}
	}
	for _, op := range batch {
		if op.Delete {
			delete(s.data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			s.data[op.Key] = v
		}
	}
	s.walLen += len(batch)
	return nil
}

// KV is a key-value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Scan returns all pairs whose key starts with prefix, sorted by key.
func (s *Store) Scan(prefix string) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []KV
	for k, v := range s.data {
		if strings.HasPrefix(k, prefix) {
			val := make([]byte, len(v))
			copy(val, v)
			out = append(out, KV{Key: k, Value: val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of keys with the given prefix.
func (s *Store) Count(prefix string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}

// Len returns the total number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// WALRecords reports the number of WAL records accumulated since the last
// compaction; exposed for compaction policies and tests.
func (s *Store) WALRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walLen
}

// Compact writes a fresh snapshot of the current state and truncates the
// WAL. Readers and writers are blocked for the duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dir == "" {
		return nil // in-memory: nothing to do
	}
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := w.WriteString(encodeRecord(Op{Key: k, Value: s.data[k]}) + "\n"); err != nil {
			f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Truncate the WAL now that the snapshot covers it.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.walBuf.Reset(s.wal)
	s.walLen = 0
	return nil
}

// Close flushes and closes the WAL. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.walBuf != nil {
		if err := s.walBuf.Flush(); err != nil {
			return err
		}
		return s.wal.Close()
	}
	return nil
}
