// Package store implements the embedded key-value store that stands in for
// the paper's MariaDB repository (§3.1): a hash-sharded in-memory map
// backed by per-shard append-only write-ahead logs with snapshot
// compaction.
//
// The OTP back end keeps token records here (with secrets already sealed by
// cryptoutil.Box before they arrive), the IDM keeps account records, and
// the audit log keeps its HMAC chain head. The store offers the operations
// those components need — Put/Get/Delete, prefix scans, and atomic batches
// — with crash recovery via parallel WAL replay.
//
// Keys hash to one of N shards (N a power of two, fixed when the directory
// is created), each with its own RWMutex, map, WAL segment, and snapshot,
// so unrelated users never contend. A batch is framed as a single
// length-prefixed, CRC-checksummed record with a trailing commit marker in
// exactly one segment (the lowest involved shard), which makes Apply
// crash-atomic: recovery truncates a torn tail to the last complete batch
// and never replays a partial one. In Sync mode with GroupCommit,
// concurrent Apply callers coalesce into a single fsync per segment.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/obs"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by all operations after Close.
var ErrClosed = errors.New("store: closed")

// MaxShards caps the shard count; more shards than this buys nothing and
// bloats the file-descriptor footprint.
const MaxShards = 256

// Op is a single mutation inside a Batch.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// KV is a key-value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Options configures Open.
type Options struct {
	// Sync forces an fsync before a committed batch is acknowledged.
	// Durable but slow; the rollout simulator runs with Sync off,
	// matching a production database's relaxed-durability benchmarks.
	Sync bool
	// Shards is the shard count, rounded up to a power of two and capped
	// at MaxShards; zero picks a GOMAXPROCS-scaled default. The count is
	// fixed when the data directory is created: reopening an existing
	// directory always uses the persisted count.
	Shards int
	// GroupCommit lets concurrent Apply callers in Sync mode share one
	// fsync per WAL segment instead of paying one each. Per-key ordering
	// is unchanged; only fsync scheduling differs.
	GroupCommit bool
	// Obs, when set, receives store_apply_total, store_fsync_total,
	// store_fsync_batch_size, and store_recovery_seconds.
	Obs *obs.Registry
}

// shard is one lock domain: a map partition plus its WAL segment and
// group-commit state.
type shard struct {
	mu     sync.RWMutex
	data   map[string][]byte
	wal    *os.File
	walBuf *bufio.Writer
	walLen int   // ops logged to this segment since the last compaction
	walErr error // sticky fail-stop error after a WAL write fault

	// Group-commit state. seq numbers batches flushed to this segment
	// (assigned under mu); synced is the highest seq covered by an
	// fsync. A committer whose seq is not yet synced either becomes the
	// sync leader or waits on gcond for one fsync to cover it.
	gmu     sync.Mutex
	gcond   *sync.Cond
	seq     atomic.Uint64
	synced  uint64
	syncing bool
	gerr    error
}

// Store is a sharded WAL-backed KV store safe for concurrent use.
type Store struct {
	dir    string // empty for pure in-memory stores
	sync   bool
	group  bool
	shards []*shard
	mask   uint32
	lsn    atomic.Uint64
	closed atomic.Bool

	applyTotal *obs.Counter
	fsyncTotal *obs.Counter
	fsyncBatch *obs.Histogram

	// syncDelay, when set (tests only), runs in the group-commit leader
	// after it claims the sync slot and before the fsync, widening the
	// coalescing window deterministically.
	syncDelay func()
}

// defaultShards scales the shard count with GOMAXPROCS (4× rounded up to a
// power of two) so the lock domains outnumber the CPUs that can contend.
func defaultShards() int {
	return normalizeShards(4 * runtime.GOMAXPROCS(0))
}

// normalizeShards rounds n up to a power of two in [1, MaxShards]; n <= 0
// selects the default.
func normalizeShards(n int) int {
	if n <= 0 {
		return defaultShards()
	}
	if n > MaxShards {
		return MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newStore(n int, opts Options) *Store {
	s := &Store{
		sync:   opts.Sync,
		group:  opts.GroupCommit,
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
	}
	for i := range s.shards {
		sh := &shard{data: make(map[string][]byte)}
		sh.gcond = sync.NewCond(&sh.gmu)
		s.shards[i] = sh
	}
	if opts.Obs != nil {
		s.applyTotal = opts.Obs.Counter("store_apply_total")
		s.fsyncTotal = opts.Obs.Counter("store_fsync_total")
		s.fsyncBatch = opts.Obs.Histogram("store_fsync_batch_size",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	}
	return s
}

// OpenMemory returns a volatile store with no backing files and the
// default shard count.
func OpenMemory() *Store { return OpenMemoryShards(0) }

// OpenMemoryShards returns a volatile store with n shards (0 = default).
func OpenMemoryShards(n int) *Store {
	return newStore(normalizeShards(n), Options{})
}

// Open loads (or creates) a store in dir, replaying snapshots and WAL
// segments across shards in parallel.
func Open(dir string, opts Options) (*Store, error) {
	t0 := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	n, err := resolveShardCount(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	s := newStore(n, opts)
	s.dir = dir
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i, sh := range s.shards {
		f, err := os.OpenFile(s.walPath(i), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.wal = f
		sh.walBuf = bufio.NewWriter(f)
	}
	if opts.Obs != nil {
		opts.Obs.Gauge("store_recovery_seconds").Set(time.Since(t0).Seconds())
	}
	return s, nil
}

const metaHeader = "openmfa-store v2"

func metaPath(dir string) string { return filepath.Join(dir, "meta") }

// resolveShardCount reads the persisted shard count, or persists the
// requested one for a fresh directory. The count is immutable after
// creation because keys hash to shards: rehashing on reopen would strand
// records in the wrong segment.
func resolveShardCount(dir string, requested int) (int, error) {
	b, err := os.ReadFile(metaPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		n := normalizeShards(requested)
		body := metaHeader + "\nshards " + strconv.Itoa(n) + "\n"
		tmp := metaPath(dir) + ".tmp"
		if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, metaPath(dir)); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		return n, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 || lines[0] != metaHeader || !strings.HasPrefix(lines[1], "shards ") {
		return 0, fmt.Errorf("store: corrupt meta file %s", metaPath(dir))
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[1], "shards "))
	if err != nil || n < 1 || n > MaxShards || n&(n-1) != 0 {
		return 0, fmt.Errorf("store: corrupt meta file %s: bad shard count", metaPath(dir))
	}
	return n, nil
}

func (s *Store) walPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.wal", i))
}

func (s *Store) snapshotPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.kv", i))
}

// WALPaths lists the per-shard WAL segment paths (nil for in-memory
// stores); exposed for operational tooling and the crash-recovery harness.
func (s *Store) WALPaths() []string {
	if s.dir == "" {
		return nil
	}
	out := make([]string, len(s.shards))
	for i := range s.shards {
		out[i] = s.walPath(i)
	}
	return out
}

// NumShards reports the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardFor reports which shard holds key; exposed for tooling and tests.
func (s *Store) ShardFor(key string) int { return s.shardIndex(key) }

// shardIndex hashes key to a shard with FNV-1a.
func (s *Store) shardIndex(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h & s.mask)
}

func (s *Store) shardFor(key string) *shard { return s.shards[s.shardIndex(key)] }

// recover loads every shard's snapshot and WAL segment in parallel, merges
// the decoded batches by LSN, and applies the merged op stream back across
// the shards in parallel (each key lands in exactly one shard, so per-key
// order is preserved).
func (s *Store) recover() error {
	n := len(s.shards)
	segBatches := make([][]walBatch, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			segBatches[i], errs[i] = s.recoverShard(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge segments by LSN. Each segment is already LSN-ascending
	// (appends within a segment serialize on the shard lock), so a
	// global sort is a merge of sorted runs.
	var all []walBatch
	for _, bs := range segBatches {
		all = append(all, bs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })

	perShard := make([][]Op, n)
	var maxLSN uint64
	for _, b := range all {
		if b.lsn > maxLSN {
			maxLSN = b.lsn
		}
		for _, op := range b.ops {
			d := s.shardIndex(op.Key)
			perShard[d] = append(perShard[d], op)
		}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			applyOps(s.shards[i].data, perShard[i])
		}(i)
	}
	wg.Wait()
	s.lsn.Store(maxLSN)
	return nil
}

// recoverShard loads shard i's snapshot (strict) and WAL segment
// (truncating a torn tail), returning the segment's committed batches.
// Only this goroutine touches shard i during recovery.
func (s *Store) recoverShard(i int) ([]walBatch, error) {
	sh := s.shards[i]
	snap, err := os.ReadFile(s.snapshotPath(i))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(snap) > 0 {
		recs, err := parseSnapshot(snap)
		if err != nil {
			return nil, err
		}
		for _, b := range recs {
			applyOps(sh.data, b.ops)
		}
	}
	wal, err := os.ReadFile(s.walPath(i))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}
	batches, valid := recoverSegment(wal)
	if valid < len(wal) {
		// Torn tail from a crash mid-append: drop the incomplete frame
		// on disk too, so the next append starts at a frame boundary.
		if err := os.Truncate(s.walPath(i), int64(valid)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	for _, b := range batches {
		sh.walLen += len(b.ops)
	}
	return batches, nil
}

func applyOps(data map[string][]byte, ops []Op) {
	for _, op := range ops {
		if op.Delete {
			delete(data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			data[op.Key] = v
		}
	}
}

// Get returns the value for key. The returned slice is a copy.
func (s *Store) Get(key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	v, ok := sh.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether key exists (false after Close).
func (s *Store) Has(key string) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return false
	}
	_, ok := sh.data[key]
	return ok
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Key: key, Value: value}})
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Key: key, Delete: true}})
}

// Apply commits a batch of operations atomically: either every op is
// visible and logged, or none is — including across a crash, because the
// whole batch is one checksummed WAL frame. Batches spanning shards lock
// the involved shards in ascending order and log to the lowest one.
func (s *Store) Apply(batch []Op) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(batch) == 0 {
		return nil
	}

	// Distinct involved shards, ascending (insertion sort: batches are
	// small and usually single-key).
	var idxBuf [8]int
	idxs := idxBuf[:0]
	for _, op := range batch {
		d := s.shardIndex(op.Key)
		pos := sort.SearchInts(idxs, d)
		if pos < len(idxs) && idxs[pos] == d {
			continue
		}
		idxs = append(idxs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		idxs[pos] = d
	}
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	unlock := func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.shards[idxs[j]].mu.Unlock()
		}
	}
	if s.closed.Load() {
		unlock()
		return ErrClosed
	}

	seg := s.shards[idxs[0]]
	var mySeq uint64
	if s.dir != "" {
		if seg.walErr != nil {
			err := seg.walErr
			unlock()
			return err
		}
		rec := encodeBatchRecord(s.lsn.Add(1), batch)
		if _, err := seg.walBuf.Write(rec); err != nil {
			seg.walErr = fmt.Errorf("store: wal append: %w", err)
			err = seg.walErr
			unlock()
			return err
		}
		if err := seg.walBuf.Flush(); err != nil {
			seg.walErr = fmt.Errorf("store: wal flush: %w", err)
			err = seg.walErr
			unlock()
			return err
		}
		if s.sync && !s.group {
			if err := seg.wal.Sync(); err != nil {
				seg.walErr = fmt.Errorf("store: wal sync: %w", err)
				err = seg.walErr
				unlock()
				return err
			}
			s.fsyncTotal.Inc()
			s.fsyncBatch.Observe(1)
		}
		seg.walLen += len(batch)
		if s.sync && s.group {
			mySeq = seg.seq.Add(1)
		}
	}
	for _, op := range batch {
		sh := s.shardFor(op.Key)
		if op.Delete {
			delete(sh.data, op.Key)
		} else {
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			sh.data[op.Key] = v
		}
	}
	unlock()
	s.applyTotal.Inc()
	if s.dir != "" && s.sync && s.group {
		return s.waitGroupSync(seg, mySeq)
	}
	return nil
}

// waitGroupSync blocks until an fsync covers mySeq. The first committer to
// arrive while no fsync is running becomes the leader and syncs on behalf
// of everything flushed so far; the rest wait on the condition variable.
// Shard locks are NOT held here, so readers and later writers proceed
// while the disk works.
func (s *Store) waitGroupSync(sh *shard, mySeq uint64) error {
	sh.gmu.Lock()
	defer sh.gmu.Unlock()
	for sh.synced < mySeq {
		if sh.gerr != nil {
			return sh.gerr
		}
		if sh.syncing {
			sh.gcond.Wait()
			continue
		}
		sh.syncing = true
		sh.gmu.Unlock()
		if s.syncDelay != nil {
			s.syncDelay()
		}
		target := sh.seq.Load() // every batch ≤ target is flushed to the OS
		err := sh.wal.Sync()
		sh.gmu.Lock()
		sh.syncing = false
		if err != nil {
			// Fail-stop: a lost fsync means unknown durability, so
			// every subsequent committer sees the fault.
			sh.gerr = fmt.Errorf("store: wal sync: %w", err)
		} else {
			s.fsyncTotal.Inc()
			s.fsyncBatch.Observe(float64(target - sh.synced))
			sh.synced = target
		}
		sh.gcond.Broadcast()
	}
	return nil
}

// Scan returns all pairs whose key starts with prefix, sorted by key. The
// per-shard results are collected under each shard's read lock and merged
// (each shard's slice is sorted; keys never repeat across shards).
func (s *Store) Scan(prefix string) ([]KV, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	parts := make([][]KV, 0, len(s.shards))
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return nil, ErrClosed
		}
		var part []KV
		for k, v := range sh.data {
			if strings.HasPrefix(k, prefix) {
				val := make([]byte, len(v))
				copy(val, v)
				part = append(part, KV{Key: k, Value: val})
			}
		}
		sh.mu.RUnlock()
		if len(part) > 0 {
			sort.Slice(part, func(i, j int) bool { return part[i].Key < part[j].Key })
			parts = append(parts, part)
			total += len(part)
		}
	}
	return mergeKVs(parts, total), nil
}

// mergeKVs k-way merges sorted per-shard runs into one sorted slice.
func mergeKVs(parts [][]KV, total int) []KV {
	if len(parts) == 1 {
		return parts[0]
	}
	var out []KV
	if total > 0 {
		out = make([]KV, 0, total)
	}
	idx := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			if idx[i] < len(p) && (best < 0 || p[idx[i]].Key < parts[best][idx[best]].Key) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
}

// Count returns the number of keys with the given prefix (0 after Close).
func (s *Store) Count(prefix string) int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		for k := range sh.data {
			if strings.HasPrefix(k, prefix) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Len returns the total number of keys (0 after Close).
func (s *Store) Len() int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// WALRecords reports the number of WAL ops accumulated since the last
// compaction, summed across segments (0 for in-memory stores and after
// Close); exposed for compaction policies and tests.
func (s *Store) WALRecords() int {
	if s.closed.Load() {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if s.closed.Load() {
			sh.mu.RUnlock()
			return 0
		}
		n += sh.walLen
		sh.mu.RUnlock()
	}
	return n
}

// snapshotChunk bounds the ops per snapshot frame so a snapshot streams as
// modest records rather than one giant allocation.
const snapshotChunk = 1024

// Compact writes a fresh snapshot of every shard and truncates the WAL
// segments. Readers and writers are blocked for the duration.
func (s *Store) Compact() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for j := len(s.shards) - 1; j >= 0; j-- {
			s.shards[j].mu.Unlock()
		}
	}()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.dir == "" {
		return nil // in-memory: nothing to do
	}
	for i, sh := range s.shards {
		if sh.walErr != nil {
			return sh.walErr
		}
		if err := s.writeSnapshot(i, sh); err != nil {
			return err
		}
	}
	// Every snapshot is durable; now the segments can drop.
	for _, sh := range s.shards {
		if err := sh.wal.Truncate(0); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := sh.wal.Seek(0, 0); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		sh.walBuf.Reset(sh.wal)
		sh.walLen = 0
	}
	return nil
}

// writeSnapshot persists shard i's map as chunked snapshot frames via
// write-to-temp, fsync, rename.
func (s *Store) writeSnapshot(i int, sh *shard) error {
	tmp := s.snapshotPath(i) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	keys := make([]string, 0, len(sh.data))
	for k := range sh.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for off := 0; off < len(keys); off += snapshotChunk {
		end := off + snapshotChunk
		if end > len(keys) {
			end = len(keys)
		}
		ops := make([]Op, 0, end-off)
		for _, k := range keys[off:end] {
			ops = append(ops, Op{Key: k, Value: sh.data[k]})
		}
		if _, err := w.Write(encodeBatchRecord(0, ops)); err != nil {
			f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath(i)); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// closeFiles closes any WAL files opened so far (Open error paths).
func (s *Store) closeFiles() {
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.Close()
		}
	}
}

// Close flushes, fsyncs, and closes every WAL segment. Further operations
// return ErrClosed (or zero for the counting reads). In-flight group
// commits are satisfied by Close's final fsync.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.wal != nil {
			if err := sh.walBuf.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.gmu.Lock()
			for sh.syncing {
				sh.gcond.Wait()
			}
			target := sh.seq.Load()
			if err := sh.wal.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.wal.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.synced = target
			if sh.gerr == nil {
				sh.gerr = ErrClosed
			}
			sh.gcond.Broadcast()
			sh.gmu.Unlock()
		}
		sh.data = nil
		sh.mu.Unlock()
	}
	return firstErr
}
