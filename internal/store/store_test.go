package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryPutGetDelete(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != ErrNotFound {
		t.Fatalf("after delete, err = %v, want ErrNotFound", err)
	}
	// Deleting absent key is fine.
	if err := s.Delete("never"); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	s.Put("k", []byte("orig"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "orig" {
		t.Fatal("mutating returned slice corrupted stored value")
	}
	// Put must also copy its input.
	in := []byte("abc")
	s.Put("k2", in)
	in[0] = 'Z'
	v3, _ := s.Get("k2")
	if string(v3) != "abc" {
		t.Fatal("mutating input slice corrupted stored value")
	}
}

func TestScanPrefixSorted(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"tok/b", "tok/a", "tok/c", "acct/x"} {
		s.Put(k, []byte(k))
	}
	got := s.Scan("tok/")
	if len(got) != 3 {
		t.Fatalf("Scan returned %d items", len(got))
	}
	want := []string{"tok/a", "tok/b", "tok/c"}
	for i, kv := range got {
		if kv.Key != want[i] {
			t.Errorf("Scan[%d].Key = %q, want %q", i, kv.Key, want[i])
		}
	}
	if s.Count("tok/") != 3 || s.Count("acct/") != 1 || s.Count("zzz") != 0 {
		t.Fatal("Count wrong")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("user/storm", []byte("sms"))
	s.Put("user/proctor", []byte("soft"))
	s.Delete("user/storm")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("user/storm"); err != ErrNotFound {
		t.Fatal("deleted key resurrected after reopen")
	}
	v, err := s2.Get("user/proctor")
	if err != nil || string(v) != "soft" {
		t.Fatalf("Get after reopen = %q, %v", v, err)
	}
}

func TestCompactionPreservesStateAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	for i := 0; i < 50; i++ {
		s.Delete(fmt.Sprintf("k%03d", i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 0 {
		t.Fatalf("WALRecords after compact = %d", s.WALRecords())
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal size after compact = %d", fi.Size())
	}
	s.Put("post", []byte("compact"))
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 51 {
		t.Fatalf("Len after reopen = %d, want 51", s2.Len())
	}
	if _, err := s2.Get("k000"); err != ErrNotFound {
		t.Fatal("deleted key present after compact+reopen")
	}
	if v, _ := s2.Get("post"); string(v) != "compact" {
		t.Fatal("post-compact write lost")
	}
}

func TestTornWALRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Put("good", []byte("val"))
	s.Close()
	// Simulate a crash mid-append: garbage partial record at the end.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("P aGFsZi13cml0dGVu") // no value field, no newline guarantee
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn record failed: %v", err)
	}
	defer s2.Close()
	if v, err := s2.Get("good"); err != nil || string(v) != "val" {
		t.Fatalf("good record lost: %q, %v", v, err)
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	key := string([]byte{0, 1, 2, ' ', '\n', 255})
	val := []byte{0, 10, 13, 32, 255}
	s.Put(key, val)
	s.Close()
	s2, _ := Open(dir, Options{})
	defer s2.Close()
	got, err := s2.Get(key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip failed: %v %v", got, err)
	}
}

func TestApplyBatchAtomicVisibility(t *testing.T) {
	s := OpenMemory()
	err := s.Apply([]Op{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "a", Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != ErrNotFound {
		t.Fatal("later delete in batch did not win")
	}
	if v, _ := s.Get("b"); string(v) != "2" {
		t.Fatal("batch put lost")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncModeWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The record must be on disk without Close.
	b, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("sync mode left WAL empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(k, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
				s.Scan(fmt.Sprintf("g%d/", g))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*200)
	}
}

// Property: a sequence of random puts/deletes replayed through persistence
// equals the in-memory result.
func TestPersistenceEquivalenceProperty(t *testing.T) {
	type step struct {
		Key    string
		Value  []byte
		Delete bool
	}
	f := func(steps []step) bool {
		dir, err := os.MkdirTemp("", "storeprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		mem := map[string][]byte{}
		s, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		for _, st := range steps {
			if st.Delete {
				s.Delete(st.Key)
				delete(mem, st.Key)
			} else {
				s.Put(st.Key, st.Value)
				v := make([]byte, len(st.Value))
				copy(v, st.Value)
				mem[st.Key] = v
			}
		}
		s.Close()
		s2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(mem) {
			return false
		}
		for k, v := range mem {
			got, err := s2.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutBuffered(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("0123456789abcdef"))
	}
}

func BenchmarkPutSync(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{Sync: true})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("0123456789abcdef"))
	}
}
