package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"openmfa/internal/obs"
)

func TestMemoryPutGetDelete(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != ErrNotFound {
		t.Fatalf("after delete, err = %v, want ErrNotFound", err)
	}
	// Deleting absent key is fine.
	if err := s.Delete("never"); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	s.Put("k", []byte("orig"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "orig" {
		t.Fatal("mutating returned slice corrupted stored value")
	}
	// Put must also copy its input.
	in := []byte("abc")
	s.Put("k2", in)
	in[0] = 'Z'
	v3, _ := s.Get("k2")
	if string(v3) != "abc" {
		t.Fatal("mutating input slice corrupted stored value")
	}
}

func TestScanPrefixSortedAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := OpenMemoryShards(shards)
			var want []string
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("tok/%03d", i)
				want = append(want, k)
				s.Put(k, []byte(k))
			}
			s.Put("acct/x", []byte("x"))
			got, err := s.Scan("tok/")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Scan returned %d items, want %d", len(got), len(want))
			}
			for i, kv := range got {
				if kv.Key != want[i] {
					t.Errorf("Scan[%d].Key = %q, want %q", i, kv.Key, want[i])
				}
			}
			if s.Count("tok/") != 50 || s.Count("acct/") != 1 || s.Count("zzz") != 0 {
				t.Fatal("Count wrong")
			}
			if s.Len() != 51 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestShardCountNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {250, 256}, {1 << 20, MaxShards},
	}
	for _, c := range cases {
		if got := normalizeShards(c.in); got != c.want {
			t.Errorf("normalizeShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if n := normalizeShards(0); n < 1 || n&(n-1) != 0 {
		t.Errorf("default shard count %d not a power of two", n)
	}
	if got := OpenMemoryShards(5).NumShards(); got != 8 {
		t.Errorf("NumShards = %d, want 8", got)
	}
}

func TestShardForIsStable(t *testing.T) {
	s := OpenMemoryShards(8)
	for _, k := range []string{"", "a", "token/alice", "acct/bob"} {
		i := s.ShardFor(k)
		if i < 0 || i >= 8 {
			t.Fatalf("ShardFor(%q) = %d out of range", k, i)
		}
		if j := s.ShardFor(k); j != i {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", k, i, j)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("user/storm", []byte("sms"))
	s.Put("user/proctor", []byte("soft"))
	s.Delete("user/storm")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NumShards(); got != 4 {
		t.Fatalf("shard count not persisted: NumShards = %d, want 4", got)
	}
	if _, err := s2.Get("user/storm"); err != ErrNotFound {
		t.Fatal("deleted key resurrected after reopen")
	}
	v, err := s2.Get("user/proctor")
	if err != nil || string(v) != "soft" {
		t.Fatalf("Get after reopen = %q, %v", v, err)
	}
}

func TestCompactionPreservesStateAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	for i := 0; i < 50; i++ {
		s.Delete(fmt.Sprintf("k%03d", i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 0 {
		t.Fatalf("WALRecords after compact = %d", s.WALRecords())
	}
	for _, p := range s.WALPaths() {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != 0 {
			t.Fatalf("wal segment %s size after compact = %d", p, fi.Size())
		}
	}
	s.Put("post", []byte("compact"))
	if s.WALRecords() != 1 {
		t.Fatalf("WALRecords after post-compact put = %d", s.WALRecords())
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 51 {
		t.Fatalf("Len after reopen = %d, want 51", s2.Len())
	}
	if _, err := s2.Get("k000"); err != ErrNotFound {
		t.Fatal("deleted key present after compact+reopen")
	}
	if v, _ := s2.Get("post"); string(v) != "compact" {
		t.Fatal("post-compact write lost")
	}
}

func TestTornWALTailTruncatedToLastBatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Shards: 1})
	s.Put("good", []byte("val"))
	s.Close()
	wal := s.WALPaths()[0]
	// Simulate a crash mid-append: a partial frame at the end.
	whole := encodeBatchRecord(99, []Op{{Key: "torn", Value: []byte("partial")}})
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(whole[:len(whole)-3])
	f.Close()
	before, _ := os.Stat(wal)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn frame failed: %v", err)
	}
	defer s2.Close()
	if v, err := s2.Get("good"); err != nil || string(v) != "val" {
		t.Fatalf("good record lost: %q, %v", v, err)
	}
	if _, err := s2.Get("torn"); err != ErrNotFound {
		t.Fatal("torn batch partially replayed")
	}
	// The torn tail must be physically truncated away so the next append
	// starts at a frame boundary.
	after, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	key := string([]byte{0, 1, 2, ' ', '\n', 255})
	val := []byte{0, 10, 13, 32, 255}
	s.Put(key, val)
	s.Close()
	s2, _ := Open(dir, Options{})
	defer s2.Close()
	got, err := s2.Get(key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip failed: %v %v", got, err)
	}
}

func TestApplyBatchAtomicVisibility(t *testing.T) {
	s := OpenMemory()
	err := s.Apply([]Op{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "a", Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != ErrNotFound {
		t.Fatal("later delete in batch did not win")
	}
	if v, _ := s.Get("b"); string(v) != "2" {
		t.Fatal("batch put lost")
	}
	if err := s.Apply(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestCrossShardBatchPersists covers batches spanning shards: the whole
// batch lands in one segment and survives reopen.
func TestCrossShardBatchPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Op
	seen := map[int]bool{}
	for i := 0; len(seen) < 3; i++ {
		k := fmt.Sprintf("x/%d", i)
		if sh := s.ShardFor(k); !seen[sh] {
			seen[sh] = true
			batch = append(batch, Op{Key: k, Value: []byte{byte(i)}})
		}
	}
	if err := s.Apply(batch); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, op := range batch {
		if _, err := s2.Get(op.Key); err != nil {
			t.Fatalf("cross-shard op %q lost: %v", op.Key, err)
		}
	}
}

// Regression test for the use-after-close bug: Scan, Count, Len, Has, and
// WALRecords used to ignore s.closed and read freed state.
func TestUseAfterCloseConsistent(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Shards: 2})
	s.Put("k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := s.Scan(""); err != ErrClosed {
		t.Fatalf("Scan after close: %v", err)
	}
	if s.Count("") != 0 {
		t.Fatal("Count after close != 0")
	}
	if s.Len() != 0 {
		t.Fatal("Len after close != 0")
	}
	if s.WALRecords() != 0 {
		t.Fatal("WALRecords after close != 0")
	}
	if s.Has("k") {
		t.Fatal("Has after close = true")
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncModeWrites(t *testing.T) {
	for _, group := range []bool{false, true} {
		t.Run(fmt.Sprintf("group=%v", group), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Sync: true, GroupCommit: group, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			// The record must be on disk without Close.
			total := int64(0)
			for _, p := range s.WALPaths() {
				if fi, err := os.Stat(p); err == nil {
					total += fi.Size()
				}
			}
			if total == 0 {
				t.Fatal("sync mode left WAL empty")
			}
		})
	}
}

func TestCorruptMetaRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Close()
	if err := os.WriteFile(metaPath(dir), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt meta accepted")
	}
	if err := os.WriteFile(metaPath(dir), []byte(metaHeader+"\nshards 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Shards: 1})
	s.Put("k", []byte("v"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Snapshots are written atomically, so damage is an error, not a
	// silent truncation.
	b, err := os.ReadFile(s.snapshotPath(0))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(s.snapshotPath(0), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestWALWriteFaultPoisonsShard proves fail-stop behaviour: once a WAL
// append fails, the shard keeps returning the fault instead of silently
// diverging from disk.
func TestWALWriteFaultPoisonsShard(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("before", []byte("ok"))
	// Yank the file out from under the buffered writer, then overflow
	// the buffer so Flush must hit the dead file.
	s.shards[0].wal.Close()
	big := make([]byte, 128*1024)
	if err := s.Put("after", big); err == nil {
		t.Fatal("write to closed WAL succeeded")
	}
	if err := s.Put("again", []byte("x")); err == nil {
		t.Fatal("poisoned shard accepted another write")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("poisoned shard compacted")
	}
	s.shards[0].wal, _ = os.Create(s.walPath(0)) // let Close run cleanly
	s.Close()
}

func TestCompactFailsWithoutDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("k", []byte("v"))
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact with missing directory succeeded")
	}
}

func TestOpenOnFileFails(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/notadir"
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open on a regular file succeeded")
	}
}

// TestGroupCommitCoalesces drives concurrent committers through Sync mode
// and checks (a) durability — everything lands on disk — and (b) that the
// fsync count is below one per batch, i.e. committers genuinely shared
// fsyncs. The leader hook holds the first fsync until every committer has
// flushed, so the coalescing is deterministic even on one CPU.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{Sync: true, GroupCommit: true, Shards: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	s.syncDelay = func() {
		deadline := time.Now().Add(2 * time.Second)
		for s.shards[0].seq.Load() < writers && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.Put(fmt.Sprintf("w%d", w), []byte("v")); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("store_fsync_total").Value(); got >= writers {
		t.Fatalf("fsyncs = %d for %d batches: group commit did not coalesce", got, writers)
	}
	if got := reg.Counter("store_apply_total").Value(); got != writers {
		t.Fatalf("store_apply_total = %d, want %d", got, writers)
	}
	if s.Len() != writers {
		t.Fatalf("Len = %d, want %d", s.Len(), writers)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers {
		t.Fatalf("after reopen Len = %d, want %d", s2.Len(), writers)
	}
}

// TestShardsDoNotSerialise is the functional non-serialisation proof (this
// container may have 1 CPU, so wall-clock scaling cannot manifest): with
// one shard's write lock held, operations on other shards still complete.
func TestShardsDoNotSerialise(t *testing.T) {
	s := OpenMemoryShards(8)
	blocked := s.ShardFor("victim")
	other := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("free%d", i)
		if s.ShardFor(k) != blocked {
			other = k
			break
		}
	}
	s.shards[blocked].mu.Lock()
	done := make(chan error, 1)
	go func() {
		if err := s.Put(other, []byte("v")); err != nil {
			done <- err
			return
		}
		_, err := s.Get(other)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("operation on a free shard blocked behind an unrelated shard lock")
	}
	// And the blocked shard really is blocked.
	blockedDone := make(chan struct{})
	go func() {
		s.Put("victim", []byte("v"))
		close(blockedDone)
	}()
	select {
	case <-blockedDone:
		t.Fatal("write to a locked shard did not block")
	case <-time.After(50 * time.Millisecond):
	}
	s.shards[blocked].mu.Unlock()
	<-blockedDone
}

// Property: a sequence of random puts/deletes replayed through persistence
// equals the in-memory result, across shard counts.
func TestPersistenceEquivalenceProperty(t *testing.T) {
	type step struct {
		Key    string
		Value  []byte
		Delete bool
	}
	for _, shards := range []int{1, 4} {
		f := func(steps []step) bool {
			dir, err := os.MkdirTemp("", "storeprop")
			if err != nil {
				return false
			}
			defer os.RemoveAll(dir)
			mem := map[string][]byte{}
			s, err := Open(dir, Options{Shards: shards})
			if err != nil {
				return false
			}
			for _, st := range steps {
				if st.Delete {
					s.Delete(st.Key)
					delete(mem, st.Key)
				} else {
					s.Put(st.Key, st.Value)
					v := make([]byte, len(st.Value))
					copy(v, st.Value)
					mem[st.Key] = v
				}
			}
			s.Close()
			s2, err := Open(dir, Options{})
			if err != nil {
				return false
			}
			defer s2.Close()
			if s2.Len() != len(mem) {
				return false
			}
			for k, v := range mem {
				got, err := s2.Get(k)
				if err != nil || !bytes.Equal(got, v) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

func TestScanDuringCloseReturnsErrClosed(t *testing.T) {
	s := OpenMemoryShards(4)
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	s.Close()
	if _, err := s.Scan(""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close: %v", err)
	}
}
