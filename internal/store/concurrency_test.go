package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

// TestConcurrentAccess is the original smoke: parallel Put/Get/Scan on a
// memory store.
func TestConcurrentAccess(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(k, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scan(fmt.Sprintf("g%d/", g)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*200)
	}
}

// TestConcurrentApplyGetScanCompact drives every mutating and reading
// operation, including cross-shard batches and periodic compactions,
// against a persistent sharded store under the race detector, then proves
// the surviving state replays cleanly.
func TestConcurrentApplyGetScanCompact(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 6, 120
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("g%d/k%d", g, i)
				// Cross-shard batch: two keys that usually land in
				// different shards, committed atomically.
				err := s.Apply([]Op{
					{Key: k, Value: []byte{byte(i)}},
					{Key: "sum/" + k, Value: []byte{byte(g)}},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scan(fmt.Sprintf("g%d/", g)); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					s.Has(k)
					s.Count("sum/")
					s.Len()
					s.WALRecords()
				}
			}
		}(g)
	}
	// One compactor racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("compact: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	want := writers * rounds * 2
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != want {
		t.Fatalf("after reopen Len = %d, want %d", s2.Len(), want)
	}
	// Atomicity of the cross-shard batches: each g/k implies its sum/ twin.
	kvs, err := s2.Scan("g")
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if !s2.Has("sum/" + kv.Key) {
			t.Fatalf("batch twin sum/%s missing", kv.Key)
		}
	}
}

// TestConcurrentCloseRaces closes the store while readers and writers are
// mid-flight: every operation must settle to ErrClosed (or its zero form)
// without panics or races.
func TestConcurrentCloseRaces(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4, Sync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%d/%d", g, i)
				if err := s.Put(k, []byte("v")); errors.Is(err, ErrClosed) {
					return
				}
				s.Get(k)
				s.Scan("g")
				s.Count("g")
			}
		}(g)
	}
	close(start)
	s.Close()
	wg.Wait()
}

func BenchmarkPutBuffered(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("0123456789abcdef"))
	}
}

func BenchmarkPutSync(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{Sync: true})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("0123456789abcdef"))
	}
}

// BenchmarkApplyParallel compares a single-shard store (every writer
// serialises on one mutex, the old design) against a GOMAXPROCS-scaled
// sharded one under parallel single-op batches. Run with -cpu 1,2,4 to see
// the single-shard variant collapse while the sharded one scales.
func BenchmarkApplyParallel(b *testing.B) {
	for _, shards := range []int{1, normalizeShards(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := OpenMemoryShards(shards)
			b.ReportAllocs()
			var ctr int64
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				ctr++
				g := ctr
				mu.Unlock()
				i := 0
				for pb.Next() {
					k := fmt.Sprintf("g%d/k%d", g, i%4096)
					if err := s.Apply([]Op{{Key: k, Value: []byte("0123456789abcdef")}}); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkGroupCommitSync measures durable Apply throughput with group
// commit on and reports fsyncs per committed batch — under parallel load
// it drops well below 1 as committers share syncs.
func BenchmarkGroupCommitSync(b *testing.B) {
	for _, group := range []bool{false, true} {
		b.Run(fmt.Sprintf("group=%v", group), func(b *testing.B) {
			dir := b.TempDir()
			reg := obs.NewRegistry()
			s, err := Open(dir, Options{Sync: true, GroupCommit: group, Shards: 1, Obs: reg})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			var ctr int64
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				ctr++
				g := ctr
				mu.Unlock()
				i := 0
				for pb.Next() {
					k := fmt.Sprintf("g%d/k%d", g, i)
					if err := s.Put(k, []byte("0123456789abcdef")); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if b.N > 0 {
				fsyncs := reg.Counter("store_fsync_total").Value()
				b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}
