package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestLSNMonotonicAcrossCompactReopen is the regression test for the LSN
// durability bug: writeSnapshot used to encode every snapshot frame with
// LSN 0 and Compact truncated the segments, so a reopen computed maxLSN=0
// and the store reissued LSNs from 1 — fatal for replication, where a
// follower keys everything on strictly increasing LSNs.
func TestLSNMonotonicAcrossCompactReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("user/%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := s.LSN()
	if before == 0 {
		t.Fatal("no LSNs issued")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotLSN(); got != before {
		t.Fatalf("snapshot floor = %d, want %d", got, before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LSN(); got != before {
		t.Fatalf("LSN after compact+reopen = %d, want %d", got, before)
	}
	if got := s2.SnapshotLSN(); got != before {
		t.Fatalf("snapshot floor after reopen = %d, want %d", got, before)
	}
	if err := s2.Put("user/new", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := s2.LSN(); got != before+1 {
		t.Fatalf("LSN after post-compact Apply = %d, want %d (strictly larger, no reuse)", got, before+1)
	}
}

// TestCompactSyncsDirBeforeTruncate pins the crash-ordering fix: the data
// directory must be fsynced after the snapshot renames and before any
// segment truncation, and a directory-sync failure must abort compaction
// with every WAL record still in place.
func TestCompactSyncsDirBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	recsBefore := s.WALRecords()
	if recsBefore == 0 {
		t.Fatal("expected WAL records before compaction")
	}

	// First: observe ordering. When the dir sync runs, every segment must
	// still hold its pre-compaction bytes (nothing truncated yet).
	called := false
	s.dirSync = func(d string) error {
		called = true
		if d != dir {
			t.Errorf("dir sync called on %q, want %q", d, dir)
		}
		total := int64(0)
		for _, p := range s.WALPaths() {
			fi, err := os.Stat(p)
			if err != nil {
				t.Errorf("stat %s during dir sync: %v", p, err)
				continue
			}
			total += fi.Size()
		}
		if total == 0 {
			t.Error("WAL segments already truncated when the directory sync ran")
		}
		return syncDir(d)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("compaction never fsynced the data directory")
	}

	// Second: a failing dir sync aborts before any truncate.
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	recsBefore = s.WALRecords()
	boom := errors.New("injected dir sync failure")
	s.dirSync = func(string) error { return boom }
	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact with failing dir sync: err = %v, want %v", err, boom)
	}
	if got := s.WALRecords(); got != recsBefore {
		t.Fatalf("WAL records after aborted compaction = %d, want %d (nothing truncated)", got, recsBefore)
	}
	// The store is still healthy: the failure happened before the
	// destructive phase, so nothing is half-reset.
	s.dirSync = nil
	if err := s.Put("after", []byte("v")); err != nil {
		t.Fatalf("Apply after aborted compaction: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("retried compaction: %v", err)
	}
}

// TestCompactTruncateFaultIsFailStop pins the sticky-error fix: a failure
// in the truncate phase leaves the segment in an unknown half-reset state,
// so the shard must refuse all later appends, exactly like an append or
// fsync fault.
func TestCompactTruncateFaultIsFailStop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected truncate failure")
	s.compactFault = func(shard int) error { return boom }
	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact = %v, want %v", err, boom)
	}
	// The fault is sticky: both a retried compaction and a later Apply
	// must refuse to touch the poisoned segment.
	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("second Compact = %v, want sticky %v", err, boom)
	}
	if err := s.Put("b", []byte("v")); !errors.Is(err, boom) {
		t.Fatalf("Apply after compact fault = %v, want sticky %v", err, boom)
	}
	// Reads still work (fail-stop, not fail-dead).
	if _, err := s.Get("a"); err != nil {
		t.Fatalf("Get after compact fault: %v", err)
	}
}

// TestEpochPersistsAcrossReopen covers the fencing epoch: monotonic
// in-process, durable across restarts, and backward compatible with meta
// files written before the epoch line existed.
func TestEpochPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh epoch = %d, want 0", got)
	}
	if err := s.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(3); err != nil {
		t.Fatalf("re-asserting current epoch: %v", err)
	}
	if err := s.SetEpoch(2); err == nil {
		t.Fatal("lowering the epoch must fail")
	}
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Epoch(); got != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", got)
	}
	s2.Close()
}

func TestLegacyMetaWithoutEpochLine(t *testing.T) {
	dir := t.TempDir()
	// A v2 meta file from before this PR: header + shard count only.
	if err := os.WriteFile(metaPath(dir), []byte(metaHeader+"\nshards 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.NumShards(); got != 2 {
		t.Fatalf("shards = %d, want persisted 2", got)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("legacy epoch = %d, want 0", got)
	}
	if err := s.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(metaPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := metaHeader + "\nshards 2\nepoch 1\n"
	if string(b) != want {
		t.Fatalf("meta after SetEpoch = %q, want %q", b, want)
	}
}

func TestCorruptEpochLineRejected(t *testing.T) {
	for _, body := range []string{
		metaHeader + "\nshards 2\nepoch x\n",
		metaHeader + "\nshards 2\nepch 1\n",
		metaHeader + "\nshards 2\nepoch 1\nextra\n",
	} {
		dir := t.TempDir()
		if err := os.WriteFile(metaPath(dir), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatalf("Open accepted corrupt meta %q", body)
		}
	}
}

func TestFollowerModeBlocksLocalApply(t *testing.T) {
	s := OpenMemoryShards(2)
	defer s.Close()
	s.SetFollowerMode(true)
	if !s.FollowerMode() {
		t.Fatal("FollowerMode not set")
	}
	if err := s.Put("k", []byte("v")); !errors.Is(err, ErrFollower) {
		t.Fatalf("Put in follower mode = %v, want ErrFollower", err)
	}
	if err := s.Apply([]Op{{Key: "k", Value: []byte("v")}}); !errors.Is(err, ErrFollower) {
		t.Fatalf("Apply in follower mode = %v, want ErrFollower", err)
	}
	// Replicated frames still land.
	if ok, err := s.ApplyReplicated(encodeBatchRecord(1, []Op{{Key: "k", Value: []byte("v")}})); err != nil || !ok {
		t.Fatalf("ApplyReplicated in follower mode = (%v, %v), want (true, nil)", ok, err)
	}
	s.SetFollowerMode(false)
	if err := s.Put("k2", []byte("v")); err != nil {
		t.Fatalf("Put after leaving follower mode: %v", err)
	}
}

// captureRepl records OnCommit frames and optionally fails WaitCommitted.
type captureRepl struct {
	mu      sync.Mutex
	lsns    []uint64
	frames  [][]byte
	waitErr error
}

func (c *captureRepl) OnCommit(lsn uint64, shard int, frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lsns = append(c.lsns, lsn)
	c.frames = append(c.frames, frame)
}

func (c *captureRepl) WaitCommitted(lsn uint64) error { return c.waitErr }

func TestReplicatorHookAndWaitGate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cap := &captureRepl{}
	s.SetReplicator(cap)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cap.mu.Lock()
	if len(cap.lsns) != 5 {
		t.Fatalf("OnCommit fired %d times, want 5", len(cap.lsns))
	}
	for i := 1; i < len(cap.lsns); i++ {
		if cap.lsns[i] <= cap.lsns[i-1] {
			t.Fatalf("per-segment OnCommit order not ascending: %v", cap.lsns)
		}
	}
	cap.mu.Unlock()

	// A WaitCommitted failure surfaces from Apply: the batch is applied
	// locally but the caller must fail closed.
	cap.waitErr = errors.New("no follower ack")
	if err := s.Put("gated", []byte("v")); !errors.Is(err, cap.waitErr) {
		t.Fatalf("Apply with failing WaitCommitted = %v, want %v", err, cap.waitErr)
	}
	if _, err := s.Get("gated"); err != nil {
		t.Fatalf("batch should still be applied locally: %v", err)
	}
	s.SetReplicator(nil)
	if err := s.Put("ungated", []byte("v")); err != nil {
		t.Fatalf("Apply after removing replicator: %v", err)
	}
}

func TestApplyReplicatedIdempotentAndGapChecked(t *testing.T) {
	// A leader store generates real frames through the OnCommit hook; a
	// follower consumes them.
	leader := OpenMemoryShards(4)
	defer leader.Close()
	cap := &captureRepl{}
	leader.SetReplicator(cap)
	for i := 0; i < 6; i++ {
		if err := leader.Put(fmt.Sprintf("user/%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	follower := OpenMemoryShards(2) // shard count independence: follower rehashes
	defer follower.Close()
	follower.SetFollowerMode(true)
	for _, f := range cap.frames {
		if ok, err := follower.ApplyReplicated(f); err != nil || !ok {
			t.Fatalf("ApplyReplicated = (%v, %v), want (true, nil)", ok, err)
		}
	}
	if got, want := follower.LSN(), leader.LSN(); got != want {
		t.Fatalf("follower LSN = %d, want %d", got, want)
	}

	// Duplicates (reconnect replay) are skipped, not errors.
	for _, f := range cap.frames {
		if ok, err := follower.ApplyReplicated(f); err != nil || ok {
			t.Fatalf("duplicate ApplyReplicated = (%v, %v), want (false, nil)", ok, err)
		}
	}
	if got, want := follower.LSN(), leader.LSN(); got != want {
		t.Fatalf("follower LSN after duplicates = %d, want %d", got, want)
	}
	for i := 0; i < 6; i++ {
		v, err := follower.Get(fmt.Sprintf("user/%d", i))
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("follower Get(user/%d) = (%v, %v)", i, v, err)
		}
	}

	// A frame that skips ahead is a gap: the follower must resync, not
	// apply a log with a hole.
	gap := encodeBatchRecord(follower.LSN()+2, []Op{{Key: "x", Value: []byte("v")}})
	if _, err := follower.ApplyReplicated(gap); !errors.Is(err, ErrReplGap) {
		t.Fatalf("gap frame = %v, want ErrReplGap", err)
	}

	// Garbage and empty frames are rejected outright.
	if _, err := follower.ApplyReplicated([]byte("junk")); err == nil {
		t.Fatal("garbage frame accepted")
	}
	if _, err := follower.ApplyReplicated(encodeBatchRecord(follower.LSN()+1, nil)); err == nil {
		t.Fatal("zero-op frame accepted")
	}
}

func TestApplyReplicatedDurableOnFollowerDisk(t *testing.T) {
	leaderCap := &captureRepl{}
	leader := OpenMemoryShards(4)
	defer leader.Close()
	leader.SetReplicator(leaderCap)
	for i := 0; i < 4; i++ {
		if err := leader.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	f, err := Open(dir, Options{Shards: 2, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	f.SetFollowerMode(true)
	for _, fr := range leaderCap.frames {
		if _, err := f.ApplyReplicated(fr); err != nil {
			t.Fatal(err)
		}
	}
	lsn := f.LSN()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The replicated frames were appended to the follower's own WAL: a
	// restart recovers state and LSN clock exactly.
	f2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := f2.LSN(); got != lsn {
		t.Fatalf("follower LSN after restart = %d, want %d", got, lsn)
	}
	for i := 0; i < 4; i++ {
		if _, err := f2.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("Get(k%d) after restart: %v", i, err)
		}
	}
}

func TestReplicationSnapshotInstallRoundTrip(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 50; i++ {
		if err := leader.Put(fmt.Sprintf("user/%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Delete("user/007"); err != nil {
		t.Fatal(err)
	}
	lsn, kvs, err := leader.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != leader.LSN() {
		t.Fatalf("snapshot lsn = %d, want %d", lsn, leader.LSN())
	}
	if len(kvs) != 49 {
		t.Fatalf("snapshot kvs = %d, want 49", len(kvs))
	}

	fdir := t.TempDir()
	follower, err := Open(fdir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	follower.SetFollowerMode(true)
	if err := follower.InstallReplicaSnapshot(lsn, kvs); err != nil {
		t.Fatal(err)
	}
	if got := follower.LSN(); got != lsn {
		t.Fatalf("follower LSN = %d, want %d", got, lsn)
	}
	if got := follower.SnapshotLSN(); got != lsn {
		t.Fatalf("follower snapshot floor = %d, want %d", got, lsn)
	}
	want, err := leader.Scan("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.Scan("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower has %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}

	// Installed state survives a restart (snapshot write + truncate ran).
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(fdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := f2.LSN(); got != lsn {
		t.Fatalf("follower LSN after restart = %d, want %d", got, lsn)
	}

	// A stale (older) snapshot is refused.
	if err := f2.InstallReplicaSnapshot(lsn-1, nil); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("stale install = %v, want ErrStaleSnapshot", err)
	}
}

func TestSegmentFramesCatchUp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	frames, err := s.SegmentFrames(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 {
		t.Fatalf("frames since 0 = %d, want 10", len(frames))
	}
	for i, f := range frames {
		if f.LSN != uint64(i+1) {
			t.Fatalf("frame %d has LSN %d, want %d (sorted, contiguous)", i, f.LSN, i+1)
		}
	}
	mid := uint64(6)
	tail, err := s.SegmentFrames(mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 4 || tail[0].LSN != mid+1 {
		t.Fatalf("frames since %d = %d starting %d, want 4 starting %d", mid, len(tail), tail[0].LSN, mid+1)
	}

	// Frames feed a follower to an identical state.
	follower := OpenMemoryShards(1)
	defer follower.Close()
	follower.SetFollowerMode(true)
	for _, f := range frames {
		if _, err := follower.ApplyReplicated(f.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if follower.LSN() != s.LSN() {
		t.Fatalf("follower LSN = %d, want %d", follower.LSN(), s.LSN())
	}

	// After compaction the segments are empty: everything at or below the
	// floor must come from a full snapshot instead.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	frames, err = s.SegmentFrames(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 {
		t.Fatalf("frames after compact = %d, want 0", len(frames))
	}
	if err := s.Put("post", []byte("v")); err != nil {
		t.Fatal(err)
	}
	frames, err = s.SegmentFrames(s.SnapshotLSN())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].LSN != s.LSN() {
		t.Fatalf("frames above floor = %v, want the one post-compact frame", frames)
	}

	// In-memory stores have no segments.
	if fr, err := follower.SegmentFrames(0); err != nil || fr != nil {
		t.Fatalf("in-memory SegmentFrames = (%v, %v), want (nil, nil)", fr, err)
	}
}

func TestEncodeDecodeFrameRoundTrip(t *testing.T) {
	ops := []Op{
		{Key: "put", Value: []byte("value")},
		{Key: "del", Delete: true},
	}
	frame := EncodeFrame(7, ops)
	lsn, got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 || len(got) != 2 {
		t.Fatalf("decoded lsn=%d nops=%d", lsn, len(got))
	}
	if got[0].Key != "put" || string(got[0].Value) != "value" || got[0].Delete {
		t.Fatalf("op 0 = %+v", got[0])
	}
	if got[1].Key != "del" || !got[1].Delete {
		t.Fatalf("op 1 = %+v", got[1])
	}
	if _, _, err := DecodeFrame(append(frame, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, _, err := DecodeFrame(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestApplyReplicatedRejectsDamagedFrames(t *testing.T) {
	s := OpenMemoryShards(2)
	defer s.Close()
	s.SetFollowerMode(true)
	good := EncodeFrame(1, []Op{{Key: "a", Value: []byte("1")}})

	bad := append([]byte(nil), good...)
	bad[4] ^= 0xFF // checksum byte
	if _, err := s.ApplyReplicated(bad); err == nil {
		t.Fatal("checksum-damaged frame accepted")
	}
	if _, err := s.ApplyReplicated(append(append([]byte(nil), good...), 0xC3)); err == nil {
		t.Fatal("frame with trailing bytes accepted")
	}
	if applied, err := s.ApplyReplicated(good); err != nil || !applied {
		t.Fatalf("clean frame after rejects: applied=%v err=%v", applied, err)
	}
}

func TestApplyReplicatedSyncAndGroupCommitPaths(t *testing.T) {
	for _, group := range []bool{false, true} {
		dir := t.TempDir()
		s, err := Open(dir, Options{Shards: 2, Sync: true, GroupCommit: group})
		if err != nil {
			t.Fatal(err)
		}
		s.SetFollowerMode(true)
		for i := uint64(1); i <= 3; i++ {
			frame := EncodeFrame(i, []Op{{Key: fmt.Sprintf("k%d", i), Value: []byte("v")}})
			if applied, err := s.ApplyReplicated(frame); err != nil || !applied {
				t.Fatalf("group=%v lsn=%d: applied=%v err=%v", group, i, applied, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := s2.LSN(); got != 3 {
			t.Fatalf("group=%v: LSN after reopen = %d, want 3", group, got)
		}
		s2.Close()
	}
}

func TestApplyReplicatedChainsToDownstreamReplicator(t *testing.T) {
	s := OpenMemoryShards(2)
	defer s.Close()
	s.SetFollowerMode(true)
	chain := &captureRepl{}
	s.SetReplicator(chain)

	frame := EncodeFrame(1, []Op{{Key: "a", Value: []byte("1")}})
	if applied, err := s.ApplyReplicated(frame); err != nil || !applied {
		t.Fatalf("applied=%v err=%v", applied, err)
	}
	// A duplicate redelivery must not be re-shipped downstream.
	if applied, err := s.ApplyReplicated(frame); err != nil || applied {
		t.Fatalf("duplicate: applied=%v err=%v", applied, err)
	}
	if len(chain.frames) != 1 || len(chain.lsns) != 1 || chain.lsns[0] != 1 {
		t.Fatalf("downstream saw lsns=%v (%d frames), want exactly lsn 1", chain.lsns, len(chain.frames))
	}
	// The chained frame is a copy: mutating the wire buffer afterwards
	// must not corrupt what the downstream follower will receive.
	frame[0] ^= 0xFF
	if _, _, err := DecodeFrame(chain.frames[0]); err != nil {
		t.Fatalf("downstream frame aliases the wire buffer: %v", err)
	}
}

func TestApplyReplicatedFailStopOnStickyWALError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("seed", []byte("v")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected truncate fault")
	s.compactFault = func(int) error { return boom }
	if err := s.Compact(); err == nil {
		t.Fatal("Compact survived injected fault")
	}
	s.SetFollowerMode(true)
	frame := EncodeFrame(s.LSN()+1, []Op{{Key: "next", Value: []byte("v")}})
	if _, err := s.ApplyReplicated(frame); !errors.Is(err, boom) {
		t.Fatalf("ApplyReplicated on fail-stopped shard: %v, want sticky %v", err, boom)
	}
}

func TestClosedStoreReplicationSurface(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len after Close = %d", n)
	}
	if n := s.Count(""); n != 0 {
		t.Fatalf("Count after Close = %d", n)
	}
	if n := s.WALRecords(); n != 0 {
		t.Fatalf("WALRecords after Close = %d", n)
	}
	if _, err := s.ApplyReplicated(EncodeFrame(2, []Op{{Key: "x", Value: nil}})); !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyReplicated after Close: %v", err)
	}
	if _, _, err := s.ReplicationSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplicationSnapshot after Close: %v", err)
	}
	if _, err := s.SegmentFrames(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("SegmentFrames after Close: %v", err)
	}
	if err := s.InstallReplicaSnapshot(9, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("InstallReplicaSnapshot after Close: %v", err)
	}
}
