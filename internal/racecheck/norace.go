//go:build !race

package racecheck

// Enabled is true when the binary was built with -race.
const Enabled = false
