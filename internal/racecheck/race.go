//go:build race

// Package racecheck reports whether the race detector instrumented this
// build. Allocation-count regression tests consult it: testing.AllocsPerRun
// measures instrumentation overhead as real allocations under -race, so the
// zero-alloc gates only run in race-free builds.
package racecheck

// Enabled is true when the binary was built with -race.
const Enabled = true
