package seglog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

const testPrefix = "test-"

func openTest(t *testing.T, dir string, replay func([]byte, Ref) error) (*Log, int) {
	t.Helper()
	l, torn, err := Open(Options{
		Dir: dir, Prefix: testPrefix, MaxSegmentSize: 1 << 20, MaxSegments: 8,
	}, replay)
	if err != nil {
		t.Fatal(err)
	}
	return l, torn
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, nil)
	defer l.Close()
	var refs []Ref
	for i := 0; i < 5; i++ {
		res, err := l.Append([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, res.Ref)
	}
	for i, ref := range refs {
		got, err := l.Read(ref)
		if err != nil || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Read(%+v) = %q, %v", ref, got, err)
		}
	}
	if _, err := l.Append(nil); err == nil {
		t.Error("empty payload framed; DecodeFrame would reject length 0")
	}
}

// TestTornTailEveryByte is the crash-recovery exhaustiveness sweep at the
// seglog layer: a segment holding several frames is truncated at EVERY
// byte offset; recovery must replay exactly the frames committed before
// the cut, truncate the file back to the last committed frame, and leave
// the log appendable.
func TestTornTailEveryByte(t *testing.T) {
	src := t.TempDir()
	l, _ := openTest(t, src, nil)
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(src, SegName(testPrefix, 1)))
	if err != nil {
		t.Fatal(err)
	}

	boundaries := []int{0}
	for off := 0; off < len(data); {
		_, frameLen, err := DecodeFrame(data[off:])
		if err != nil {
			t.Fatalf("intact segment has bad frame at %d: %v", off, err)
		}
		off += frameLen
		boundaries = append(boundaries, off)
	}

	for cut := len(data); cut >= 0; cut-- {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SegName(testPrefix, 1)), data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		var replayed []string
		l, torn := openTest(t, dir, func(p []byte, _ Ref) error {
			replayed = append(replayed, string(p))
			return nil
		})
		want, validEnd := 0, 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				want++
				validEnd = b
			}
		}
		if len(replayed) != want {
			t.Fatalf("cut=%d: replayed %d frames, want %d", cut, len(replayed), want)
		}
		for i, p := range replayed {
			if p != fmt.Sprintf("frame-%d", i) {
				t.Fatalf("cut=%d: frame %d = %q", cut, i, p)
			}
		}
		if (cut != validEnd) != (torn == 1) {
			t.Fatalf("cut=%d: torn=%d with validEnd=%d", cut, torn, validEnd)
		}
		if fi, err := os.Stat(filepath.Join(dir, SegName(testPrefix, 1))); err != nil || fi.Size() != int64(validEnd) {
			t.Fatalf("cut=%d: segment left at %v bytes, want %d (err %v)", cut, fi.Size(), validEnd, err)
		}
		if res, err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		} else if got, err := l.Read(res.Ref); err != nil || string(got) != "post-recovery" {
			t.Fatalf("cut=%d: post-recovery frame unreadable: %q, %v", cut, got, err)
		}
		l.Close()
	}
}

func TestRotationAndEviction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{
		Dir: dir, Prefix: testPrefix, MaxSegmentSize: 64, MaxSegments: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 40) // one frame per segment
	var rotations, evictions int
	for i := 0; i < 5; i++ {
		res, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rotated {
			rotations++
		}
		evictions += len(res.Evicted)
	}
	if rotations != 4 || evictions != 3 {
		t.Errorf("rotations=%d evictions=%d, want 4 and 3", rotations, evictions)
	}
	seqs, err := ListSegments(dir, testPrefix)
	if err != nil || len(seqs) != 2 {
		t.Fatalf("segments on disk = %v, want 2 (err %v)", seqs, err)
	}
}

func TestScanDirIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, nil)
	l.Append([]byte("committed"))
	l.Close()
	seg := filepath.Join(dir, SegName(testPrefix, 1))
	data, _ := os.ReadFile(seg)
	torn := append(append([]byte{}, data...), EncodeFrame([]byte("half"))[:5]...)
	if err := os.WriteFile(seg, torn, 0o600); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := ScanDir(dir, testPrefix, func(p []byte, _ Ref) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "committed" {
		t.Fatalf("ScanDir = %v", got)
	}
	if fi, _ := os.Stat(seg); fi.Size() != int64(len(torn)) {
		t.Error("read-only scan modified the segment file")
	}
}

func TestForeignAndClosed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o600); err != nil {
		t.Fatal(err)
	}
	// A different prefix's segment is foreign too.
	if err := os.WriteFile(filepath.Join(dir, "other-000001.seg"), EncodeFrame([]byte("x")), 0o600); err != nil {
		t.Fatal(err)
	}
	n := 0
	l, _ := openTest(t, dir, func([]byte, Ref) error { n++; return nil })
	if n != 0 {
		t.Errorf("replayed %d frames from foreign files", n)
	}
	l.Close()
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Error("foreign file disturbed")
	}
	if _, err := l.Append([]byte("late")); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
}
