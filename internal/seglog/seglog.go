// Package seglog is the shared crash-safe segment-log layer under the
// flight recorder and the incident profiler: rotated, size-capped segment
// files holding CRC-framed payloads with the store WAL's format-v2
// commit discipline. Every persisted record is exactly one frame,
//
//	[u32 payload length][u32 CRC32-IEEE of payload][payload][0xC3]
//
// little-endian, committed only when all four pieces are present and
// consistent. Recovery scans each segment frame-by-frame and truncates at
// the first incomplete or corrupt frame, so a crash mid-append can lose
// at most the record being written — a torn tail never yields a half
// record to a reader.
//
// Segments are named <prefix>NNNNNN.seg and rotate by size: when the
// active segment would exceed MaxSegmentSize a new one is opened, and
// when the directory holds more than MaxSegments the oldest is deleted
// (Append reports the evicted sequence numbers so owners can drop index
// entries). Reads go back to disk and re-verify the checksum, so the
// owner's memory footprint is just its index.
//
// Two access modes:
//
//   - Open: read-write recovery — replays committed frames, physically
//     truncates torn tails, opens a fresh active segment for Append.
//   - ScanDir / ScanSegment: read-only — torn tails are skipped, not
//     truncated, safe against a live directory or segments copied off a
//     crashed host (the offline loganalyze readers).
package seglog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Frame-format constants, shared with the historical flightrec layout
// (existing flightrec segments read back unchanged).
const (
	// CommitMarker is the single byte terminating every committed frame.
	CommitMarker = 0xC3
	// FrameHeaderSize is the length + CRC prefix in bytes.
	FrameHeaderSize = 8
	// MaxPayloadSize bounds one frame's payload (64 MiB).
	MaxPayloadSize = 1 << 26
	// SegSuffix is the segment filename extension.
	SegSuffix = ".seg"
)

var (
	errShortFrame  = errors.New("seglog: incomplete segment frame")
	errBadLength   = errors.New("seglog: segment frame length out of range")
	errBadChecksum = errors.New("seglog: segment frame checksum mismatch")
	errBadMarker   = errors.New("seglog: segment frame missing commit marker")

	// ErrClosed is returned by Append after Close.
	ErrClosed = errors.New("seglog: log closed")
)

// EncodeFrame renders one complete frame around payload.
func EncodeFrame(payload []byte) []byte {
	buf := make([]byte, FrameHeaderSize+len(payload)+1)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[FrameHeaderSize:], payload)
	buf[FrameHeaderSize+len(payload)] = CommitMarker
	return buf
}

// DecodeFrame parses the frame at the start of b, returning the payload
// and the total frame size consumed. Any defect (short data, bad length,
// checksum mismatch, missing commit marker) is an error; callers treat it
// as the torn tail and stop.
func DecodeFrame(b []byte) (payload []byte, frameLen int, err error) {
	if len(b) < FrameHeaderSize {
		return nil, 0, errShortFrame
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen <= 0 || plen > MaxPayloadSize {
		return nil, 0, errBadLength
	}
	total := FrameHeaderSize + plen + 1
	if len(b) < total {
		return nil, 0, errShortFrame
	}
	payload = b[FrameHeaderSize : FrameHeaderSize+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errBadChecksum
	}
	if b[FrameHeaderSize+plen] != CommitMarker {
		return nil, 0, errBadMarker
	}
	return payload, total, nil
}

// SegName renders the segment filename for seq under prefix.
func SegName(prefix string, seq uint64) string {
	return fmt.Sprintf("%s%06d%s", prefix, seq, SegSuffix)
}

// SegSeq parses a segment filename, reporting ok=false for foreign files
// (wrong prefix, wrong suffix, non-numeric middle).
func SegSeq(prefix, name string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, SegSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), SegSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ListSegments returns the segment sequence numbers present in dir for
// prefix, ascending. Foreign files are ignored.
func ListSegments(dir, prefix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		if seq, ok := SegSeq(prefix, ent.Name()); ok && !ent.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Ref locates one committed frame on disk.
type Ref struct {
	Seg    uint64
	Offset int64
	Length int // full frame length including header and marker
}

// ScanSegment walks every committed frame in one segment file, invoking
// fn with each payload and its location. It returns the byte offset of
// the first torn or corrupt frame (== file size when the segment is
// clean), which Open uses to truncate the recovered tail. The file is
// never modified.
func ScanSegment(dir, prefix string, seq uint64, fn func(payload []byte, ref Ref) error) (validEnd int64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, SegName(prefix, seq)))
	if err != nil {
		return 0, err
	}
	off := 0
	for off < len(data) {
		payload, frameLen, derr := DecodeFrame(data[off:])
		if derr != nil {
			// Torn tail: everything before off is intact.
			return int64(off), nil
		}
		if fn != nil {
			if err := fn(payload, Ref{Seg: seq, Offset: int64(off), Length: frameLen}); err != nil {
				return int64(off), err
			}
		}
		off += frameLen
	}
	return int64(off), nil
}

// ScanDir walks every committed frame across all of dir's prefix
// segments in persistence order, read-only: torn tails are skipped, not
// truncated, so it is safe against a live log's directory or against
// segments copied off a crashed host.
func ScanDir(dir, prefix string, fn func(payload []byte, ref Ref) error) error {
	seqs, err := ListSegments(dir, prefix)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if _, err := ScanSegment(dir, prefix, seq, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame fetches one frame's payload back off disk by reference,
// re-verifying the checksum so a post-write disk corruption surfaces as
// an error rather than bad data.
func ReadFrame(dir, prefix string, ref Ref) ([]byte, error) {
	f, err := os.Open(filepath.Join(dir, SegName(prefix, ref.Seg)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, ref.Length)
	if _, err := io.ReadFull(io.NewSectionReader(f, ref.Offset, int64(ref.Length)), buf); err != nil {
		return nil, fmt.Errorf("seglog: read frame: %w", err)
	}
	payload, _, err := DecodeFrame(buf)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// Options parameterises Open.
type Options struct {
	// Dir holds the segment files (required; created if missing).
	Dir string
	// Prefix names the segments: <prefix>NNNNNN.seg (required).
	Prefix string
	// MaxSegmentSize rotates the active segment once appending would push
	// it past this many bytes (required > 0).
	MaxSegmentSize int64
	// MaxSegments bounds the retained segment count (required > 0); the
	// oldest segment is deleted on rotation past it.
	MaxSegments int
}

// AppendResult reports what one Append did beyond writing the frame.
type AppendResult struct {
	// Ref locates the appended frame.
	Ref Ref
	// Rotated reports that a new active segment was opened first.
	Rotated bool
	// Evicted lists segment sequence numbers deleted by retention; the
	// owner must drop any index entries referencing them.
	Evicted []uint64
}

// Log is an append-only rotated segment log. Methods are safe for
// concurrent use.
type Log struct {
	opts Options

	mu      sync.Mutex
	active  *os.File
	actSeq  uint64
	actSize int64
	segs    []uint64 // live segment seqs, ascending
}

// Open recovers dir: it replays every committed frame (ascending segment
// order) through replay, physically truncates torn tails — any segment,
// not just the last, can have one if a crash raced rotation — and opens
// a fresh active segment after the highest recovered one. torn counts
// the truncated tails. A replay error aborts the open.
func Open(opts Options, replay func(payload []byte, ref Ref) error) (l *Log, torn int, err error) {
	if opts.Dir == "" || opts.Prefix == "" {
		return nil, 0, fmt.Errorf("seglog: Dir and Prefix required")
	}
	if opts.MaxSegmentSize <= 0 || opts.MaxSegments <= 0 {
		return nil, 0, fmt.Errorf("seglog: MaxSegmentSize and MaxSegments must be positive")
	}
	if err := os.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, 0, fmt.Errorf("seglog: %w", err)
	}
	l = &Log{opts: opts}
	seqs, err := ListSegments(opts.Dir, opts.Prefix)
	if err != nil {
		return nil, 0, fmt.Errorf("seglog: %w", err)
	}
	for _, seq := range seqs {
		validEnd, err := ScanSegment(opts.Dir, opts.Prefix, seq, replay)
		if err != nil {
			return nil, 0, fmt.Errorf("seglog: recover segment %d: %w", seq, err)
		}
		path := filepath.Join(opts.Dir, SegName(opts.Prefix, seq))
		if fi, err := os.Stat(path); err == nil && fi.Size() > validEnd {
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, 0, fmt.Errorf("seglog: truncate torn tail: %w", err)
			}
			torn++
		}
		l.segs = append(l.segs, seq)
	}
	if err := l.openActiveLocked(); err != nil {
		return nil, 0, err
	}
	return l, torn, nil
}

// openActiveLocked opens a fresh segment after the highest known one.
func (l *Log) openActiveLocked() error {
	next := uint64(1)
	if n := len(l.segs); n > 0 {
		next = l.segs[n-1] + 1
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, SegName(l.opts.Prefix, next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	l.active, l.actSeq, l.actSize = f, next, 0
	l.segs = append(l.segs, next)
	return nil
}

// Append frames payload and writes it to the active segment, rotating
// first when the segment is full and evicting the oldest segments past
// MaxSegments.
func (l *Log) Append(payload []byte) (AppendResult, error) {
	if len(payload) == 0 || len(payload) > MaxPayloadSize {
		// DecodeFrame rejects these lengths, so a frame written around one
		// would read back as a torn tail and poison the rest of its segment.
		return AppendResult{}, errBadLength
	}
	frame := EncodeFrame(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return AppendResult{}, ErrClosed
	}
	var res AppendResult
	if l.actSize > 0 && l.actSize+int64(len(frame)) > l.opts.MaxSegmentSize {
		l.active.Close()
		if err := l.openActiveLocked(); err != nil {
			return AppendResult{}, err
		}
		res.Rotated = true
		for len(l.segs) > l.opts.MaxSegments {
			old := l.segs[0]
			l.segs = l.segs[1:]
			os.Remove(filepath.Join(l.opts.Dir, SegName(l.opts.Prefix, old)))
			res.Evicted = append(res.Evicted, old)
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		return AppendResult{}, err
	}
	res.Ref = Ref{Seg: l.actSeq, Offset: l.actSize, Length: len(frame)}
	l.actSize += int64(len(frame))
	return res, nil
}

// Read fetches one payload back off disk by reference, re-verifying its
// checksum. Works after Close.
func (l *Log) Read(ref Ref) ([]byte, error) {
	return ReadFrame(l.opts.Dir, l.opts.Prefix, ref)
}

// Dir reports the segment directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Close closes the active segment. Appends fail afterwards; Read keeps
// working. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	return err
}
