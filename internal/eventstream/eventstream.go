// Package eventstream is the typed auth-event bus behind the live
// operational analytics: every layer of the stack (sshd, pam, radius,
// otpd, sms, portal) publishes its outcomes — login results, MFA method
// use, SMS sends, lockouts, token enrolments — and subscribers such as
// internal/authwatch aggregate them in real time.
//
// The bus is deliberately lossy under pressure: publishing never blocks an
// auth path. Each subscription has a bounded channel; when a subscriber
// falls behind, its excess events are dropped and counted (per
// subscription and globally) rather than backing up into sshd or otpd.
// Subscribers are spread across lock stripes so subscribe/close churn on
// one stripe never contends with fan-out on another.
//
// Everything is nil-safe: publishing to a nil *Bus is a no-op, so
// components keep their zero-config wiring.
package eventstream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/obs"
)

// Type classifies an auth event.
type Type string

// Event types.
const (
	TypeLogin   Type = "login"   // one authentication decision (sshd)
	TypeMFA     Type = "mfa"     // a second factor was exercised (pam token module)
	TypeSMS     Type = "sms"     // an SMS token code left the stack (otpd/sms)
	TypeLockout Type = "lockout" // a user crossed the failed-attempt threshold (otpd)
	TypeEnroll  Type = "enroll"  // a token device was enrolled (otpd/portal)
	TypeRadius  Type = "radius"  // one RADIUS packet decision (radius server)
	TypeRisk    Type = "risk"    // one adaptive-MFA risk decision (risk engine)
)

// Event is one typed auth event. Fields are populated per type: every
// event has Time/Type/Component; login events carry User/Addr/Result/MFA
// and the §4.1 TTY/Shell telemetry; mfa and enroll events carry Method
// (token type); sms events carry Result (sent/delivered/failed/...).
type Event struct {
	Time      time.Time `json:"time"`
	Type      Type      `json:"type"`
	Component string    `json:"component"`
	Trace     string    `json:"trace,omitempty"`
	User      string    `json:"user,omitempty"`
	Addr      string    `json:"addr,omitempty"`
	Result    string    `json:"result,omitempty"`
	Method    string    `json:"method,omitempty"`
	MFA       bool      `json:"mfa,omitempty"`
	TTY       bool      `json:"tty,omitempty"`
	Shell     string    `json:"shell,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	// Duration is the wall time the decision took, set on completion
	// events (login, radius) so consumers like the flight recorder can
	// classify slow traces without re-deriving timing from spans.
	Duration time.Duration `json:"duration,omitempty"`
}

// numStripes spreads subscriptions over independent locks. Power of two.
const numStripes = 8

type stripe struct {
	mu   sync.RWMutex
	subs map[*Subscription]struct{}
}

// Bus is the pub/sub fan-out. The zero value is not usable; call NewBus.
type Bus struct {
	stripes   [numStripes]stripe
	next      atomic.Uint64 // round-robin stripe assignment
	published atomic.Uint64
	dropped   atomic.Uint64

	pubCounter  *obs.Counter // eventstream_events_published_total
	dropCounter *obs.Counter // eventstream_events_dropped_total
}

// NewBus creates a bus. reg may be nil; with a registry the bus exports
// eventstream_events_published_total and eventstream_events_dropped_total.
func NewBus(reg *obs.Registry) *Bus {
	b := &Bus{
		pubCounter:  reg.Counter("eventstream_events_published_total"),
		dropCounter: reg.Counter("eventstream_events_dropped_total"),
	}
	for i := range b.stripes {
		b.stripes[i].subs = make(map[*Subscription]struct{})
	}
	return b
}

// Subscription is one subscriber's bounded event feed. Read from Events
// and call Close when done; after Close the channel is closed once any
// already-buffered events are received.
type Subscription struct {
	ch      chan Event
	st      *stripe
	dropped atomic.Uint64
	closed  atomic.Bool
}

// DefaultSubscriptionBuffer is the channel depth used when Subscribe is
// given a non-positive buffer.
const DefaultSubscriptionBuffer = 1024

// Subscribe registers a new subscriber with the given channel buffer
// (DefaultSubscriptionBuffer if <= 0). Nil-safe: a nil bus returns a
// subscription whose channel is already closed.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriptionBuffer
	}
	s := &Subscription{ch: make(chan Event, buffer)}
	if b == nil {
		close(s.ch)
		s.closed.Store(true)
		return s
	}
	st := &b.stripes[b.next.Add(1)%numStripes]
	s.st = st
	st.mu.Lock()
	st.subs[s] = struct{}{}
	st.mu.Unlock()
	return s
}

// Events is the subscriber's feed.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped is the number of events this subscriber missed to buffer
// pressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unsubscribes and closes the feed. Safe to call more than once and
// concurrently with Publish: removal and channel close happen under the
// stripe write lock, which excludes in-flight sends (they hold the read
// lock).
func (s *Subscription) Close() {
	if s.st == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.st.mu.Lock()
	delete(s.st.subs, s)
	close(s.ch)
	s.st.mu.Unlock()
}

// Publish fans e out to every subscriber without blocking: a full
// subscription drops the event (counted). Nil-safe.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	b.published.Add(1)
	b.pubCounter.Inc()
	for i := range b.stripes {
		st := &b.stripes[i]
		st.mu.RLock()
		for s := range st.subs {
			select {
			case s.ch <- e:
			default:
				s.dropped.Add(1)
				b.dropped.Add(1)
				b.dropCounter.Inc()
			}
		}
		st.mu.RUnlock()
	}
}

// Published is the total number of events published. Nil-safe.
func (b *Bus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Dropped is the total number of per-subscriber drops. Nil-safe.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// --- JSONL export / import ---

// WriteJSONL writes events one JSON object per line, the bus's canonical
// export format (and one of cmd/loganalyze's input formats).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("eventstream: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream, skipping malformed lines
// (counted in the second return).
func ReadJSONL(r io.Reader) ([]Event, int, error) {
	var events []Event
	bad := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Type == "" {
			bad++
			continue
		}
		events = append(events, e)
	}
	return events, bad, sc.Err()
}

// ReadFile reads a JSONL export from disk.
func ReadFile(path string) ([]Event, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("eventstream: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}

// ToAuthlog converts an event to the authlog record it corresponds to,
// reporting false for event types with no authlog equivalent. This is how
// cmd/loganalyze feeds JSONL exports through the same §4.1 analysis
// pipeline as secure-log files: an accepted login event becomes the
// SessionOpen record carrying the TTY/Shell telemetry.
func ToAuthlog(e Event) (authlog.Event, bool) {
	a := authlog.Event{
		Time:   e.Time,
		User:   e.User,
		Addr:   e.Addr,
		Shell:  e.Shell,
		TTY:    e.TTY,
		Detail: e.Detail,
	}
	switch {
	case e.Type == TypeLogin && e.Result == "accept":
		a.Type = authlog.SessionOpen
	case e.Type == TypeLogin:
		a.Type = authlog.FailedPassword
	case e.Type == TypeMFA && e.Result == "accept":
		a.Type = authlog.AcceptedToken
	case e.Type == TypeMFA:
		a.Type = authlog.FailedToken
	default:
		return authlog.Event{}, false
	}
	return a, true
}
