package eventstream

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

func TestFanOutExactlyOnce(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	bus := NewBus(reg)
	const subs, events = 5, 200

	var sl []*Subscription
	for i := 0; i < subs; i++ {
		sl = append(sl, bus.Subscribe(events))
	}
	for i := 0; i < events; i++ {
		bus.Publish(Event{Type: TypeLogin, Component: "sshd", User: fmt.Sprintf("u%d", i)})
	}
	for si, sub := range sl {
		for i := 0; i < events; i++ {
			select {
			case e := <-sub.Events():
				if want := fmt.Sprintf("u%d", i); e.User != want {
					t.Fatalf("sub %d event %d: user = %q, want %q (out of order or duplicated)", si, i, e.User, want)
				}
			default:
				t.Fatalf("sub %d: only %d of %d events delivered", si, i, events)
			}
		}
		select {
		case e := <-sub.Events():
			t.Fatalf("sub %d: extra event %+v beyond the %d published", si, e, events)
		default:
		}
		if d := sub.Dropped(); d != 0 {
			t.Errorf("sub %d: dropped = %d, want 0", si, d)
		}
		sub.Close()
	}
	if got := bus.Published(); got != events {
		t.Errorf("Published() = %d, want %d", got, events)
	}
	if got := bus.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0", got)
	}
	if v := reg.Counter("eventstream_events_published_total").Value(); v != events {
		t.Errorf("published counter = %d, want %d", v, events)
	}
}

// TestSlowSubscriberIsolation proves a full (never-drained) subscription
// only loses its own events: drops are counted, bounded by its buffer, and
// a healthy subscriber on the same bus still receives everything.
func TestSlowSubscriberIsolation(t *testing.T) {
	leakcheck.Check(t)
	bus := NewBus(nil)
	const events = 100
	slow := bus.Subscribe(4)
	fast := bus.Subscribe(events)
	for i := 0; i < events; i++ {
		bus.Publish(Event{Type: TypeLogin})
	}
	if d := slow.Dropped(); d != events-4 {
		t.Errorf("slow.Dropped() = %d, want %d", d, events-4)
	}
	if d := bus.Dropped(); d != events-4 {
		t.Errorf("bus.Dropped() = %d, want %d", d, events-4)
	}
	n := 0
	for {
		select {
		case <-fast.Events():
			n++
			continue
		default:
		}
		break
	}
	if n != events {
		t.Errorf("fast subscriber received %d of %d events", n, events)
	}
	slow.Close()
	fast.Close()
}

// TestConcurrentPublishSubscribeClose exercises the stripe locking under
// -race: publishers fan out while subscribers come, drain, and go. The
// invariant under test is structural (no send-on-closed-channel panic, no
// data race), not a delivery count.
func TestConcurrentPublishSubscribeClose(t *testing.T) {
	leakcheck.Check(t)
	bus := NewBus(nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					bus.Publish(Event{Type: TypeLogin})
				}
			}
		}()
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := bus.Subscribe(8)
				for j := 0; j < 10; j++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if bus.Published() == 0 {
		t.Error("no events published during the churn")
	}
}

func TestNilBusAndClosedSubscription(t *testing.T) {
	leakcheck.Check(t)
	var bus *Bus
	bus.Publish(Event{Type: TypeLogin}) // must not panic
	sub := bus.Subscribe(4)
	if _, ok := <-sub.Events(); ok {
		t.Error("nil-bus subscription delivered an event")
	}
	sub.Close() // idempotent on the already-closed subscription

	real := NewBus(nil)
	s := real.Subscribe(4)
	s.Close()
	s.Close() // double close must not panic
	real.Publish(Event{Type: TypeLogin})
	if d := s.Dropped(); d != 0 {
		t.Errorf("closed subscription counted %d drops", d)
	}
}

func TestJSONLRoundTripAndToAuthlog(t *testing.T) {
	leakcheck.Check(t)
	now := time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)
	in := []Event{
		{Time: now, Type: TypeLogin, Component: "sshd", User: "alice", Addr: "73.1.2.3",
			Result: "accept", MFA: true, Method: "soft", TTY: true, Shell: "bash"},
		{Time: now.Add(time.Minute), Type: TypeLogin, Component: "sshd", User: "bob",
			Addr: "73.1.2.4", Result: "reject"},
		{Time: now, Type: TypeMFA, Component: "pam", User: "alice", Result: "accept", Method: "soft"},
		{Time: now, Type: TypeMFA, Component: "pam", User: "bob", Result: "reject", Method: "sms"},
		{Time: now, Type: TypeSMS, Component: "otpd", User: "bob", Result: "sent"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	text := buf.String() + "not json\n\n{\"type\":\"\"}\n"
	out, bad, err := ReadJSONL(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 2 {
		t.Errorf("bad = %d, want 2 (garbage line + empty type)", bad)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Time.Equal(in[i].Time) || out[i] != (Event{Time: out[i].Time,
			Type: in[i].Type, Component: in[i].Component, Trace: in[i].Trace,
			User: in[i].User, Addr: in[i].Addr, Result: in[i].Result,
			Method: in[i].Method, MFA: in[i].MFA, TTY: in[i].TTY,
			Shell: in[i].Shell, Detail: in[i].Detail}) {
			t.Errorf("event %d: round trip mismatch\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}

	wantTypes := []struct {
		typ authlog.EventType
		ok  bool
	}{
		{authlog.SessionOpen, true},
		{authlog.FailedPassword, true},
		{authlog.AcceptedToken, true},
		{authlog.FailedToken, true},
		{"", false},
	}
	for i, e := range in {
		a, ok := ToAuthlog(e)
		if ok != wantTypes[i].ok {
			t.Errorf("ToAuthlog(%d): ok = %v, want %v", i, ok, wantTypes[i].ok)
			continue
		}
		if ok && a.Type != wantTypes[i].typ {
			t.Errorf("ToAuthlog(%d): type = %v, want %v", i, a.Type, wantTypes[i].typ)
		}
	}
	if a, _ := ToAuthlog(in[0]); !a.TTY || a.Shell != "bash" || a.User != "alice" {
		t.Errorf("ToAuthlog dropped telemetry: %+v", a)
	}
}
