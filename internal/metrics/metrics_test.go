package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var (
	start = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)
	end   = time.Date(2016, 8, 10, 0, 0, 0, 0, time.UTC)
)

func TestDayIndexAndDate(t *testing.T) {
	d := NewDaily(start, end)
	if d.Days != 10 {
		t.Fatalf("Days = %d, want 10", d.Days)
	}
	if d.DayIndex(start) != 0 {
		t.Fatal("day 0 wrong")
	}
	if d.DayIndex(start.Add(36*time.Hour)) != 1 {
		t.Fatal("mid-day timestamp mapped wrong")
	}
	if d.DayIndex(end.Add(23*time.Hour)) != 9 {
		t.Fatal("last day wrong")
	}
	// Clamping.
	if d.DayIndex(start.Add(-48*time.Hour)) != 0 {
		t.Fatal("pre-start not clamped")
	}
	if d.DayIndex(end.AddDate(0, 1, 0)) != 9 {
		t.Fatal("post-end not clamped")
	}
	if !d.Date(3).Equal(start.AddDate(0, 0, 3)) {
		t.Fatal("Date(3) wrong")
	}
}

func TestAddSetGetSum(t *testing.T) {
	d := NewDaily(start, end)
	d.Add(start, "logins", 2)
	d.Add(start.Add(time.Hour), "logins", 3)
	d.Add(start.AddDate(0, 0, 1), "logins", 7)
	if got := d.Get(start, "logins"); got != 5 {
		t.Fatalf("Get = %v", got)
	}
	if got := d.Sum("logins"); got != 12 {
		t.Fatalf("Sum = %v", got)
	}
	d.Set(start, "logins", 1)
	if got := d.Sum("logins"); got != 8 {
		t.Fatalf("Sum after Set = %v", got)
	}
	if got := d.SumRange("logins", start, start); got != 1 {
		t.Fatalf("SumRange = %v", got)
	}
	if got := d.Sum("absent"); got != 0 {
		t.Fatalf("absent Sum = %v", got)
	}
}

func TestMaxAndRank(t *testing.T) {
	d := NewDaily(start, end)
	d.Set(start.AddDate(0, 0, 2), "pairings", 10)
	d.Set(start.AddDate(0, 0, 5), "pairings", 100) // the 09-07 analogue
	d.Set(start.AddDate(0, 0, 7), "pairings", 50)
	v, idx := d.Max("pairings")
	if v != 100 || idx != 5 {
		t.Fatalf("Max = %v at %d", v, idx)
	}
	if r := d.Rank("pairings", start.AddDate(0, 0, 5)); r != 1 {
		t.Fatalf("rank of peak = %d", r)
	}
	if r := d.Rank("pairings", start.AddDate(0, 0, 7)); r != 2 {
		t.Fatalf("rank of second = %d", r)
	}
	if r := d.Rank("pairings", start.AddDate(0, 0, 2)); r != 3 {
		t.Fatalf("rank of third = %d", r)
	}
}

func TestSeriesCopyAndNames(t *testing.T) {
	d := NewDaily(start, end)
	d.Add(start, "b", 1)
	d.Add(start, "a", 1)
	s := d.Series("a")
	s[0] = 99
	if d.Get(start, "a") != 1 {
		t.Fatal("Series returned live slice")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTableRendering(t *testing.T) {
	d := NewDaily(start, start.AddDate(0, 0, 1))
	d.Add(start, "x", 1.5)
	out := d.Table("x")
	if !strings.Contains(out, "2016-08-01") || !strings.Contains(out, "1.5") {
		t.Fatalf("table = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 days
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestChart(t *testing.T) {
	d := NewDaily(start, end)
	for i := 0; i < 10; i++ {
		d.Set(start.AddDate(0, 0, i), "v", float64(i))
	}
	out := d.Chart("v", 10, 4)
	if !strings.Contains(out, "#") {
		t.Fatalf("chart has no bars: %q", out)
	}
	// Wider than days: one column per day.
	out2 := d.Chart("v", 100, 2)
	if len(strings.Split(out2, "\n")[1]) != 10 {
		t.Fatalf("chart width wrong: %q", out2)
	}
	if d.Chart("v", 0, 5) != "" {
		t.Fatal("zero width should render empty")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("Token Device Pairing Type", map[string]int{
		"soft": 5538, "sms": 4022, "training": 297, "hard": 143,
	})
	if b.Rows[0].Label != "soft" || b.Rows[3].Label != "hard" {
		t.Fatalf("order = %+v", b.Rows)
	}
	if got := b.Percent("soft"); got < 55.3 || got > 55.5 {
		t.Fatalf("soft pct = %v", got)
	}
	if b.Percent("yubikey") != 0 {
		t.Fatal("absent label nonzero")
	}
	out := b.String()
	if !strings.Contains(out, "55.38") || !strings.Contains(out, "Breakdown (%)") {
		t.Fatalf("render = %q", out)
	}
	// Degenerate empty breakdown.
	eb := NewBreakdown("empty", nil)
	if len(eb.Rows) != 0 {
		t.Fatal("empty breakdown has rows")
	}
}

// Property: Sum equals the sum of per-day Adds regardless of ordering.
func TestSumProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		d := NewDaily(start, end)
		var want float64
		for i, v := range vals {
			day := start.AddDate(0, 0, i%10)
			d.Add(day, "s", float64(v))
			want += float64(v)
		}
		return d.Sum("s") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Breakdown percentages always total ~100 for nonempty counts.
func TestBreakdownTotalProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		if a == 0 && b == 0 && c == 0 {
			return true
		}
		bd := NewBreakdown("t", map[string]int{"a": int(a), "b": int(b), "c": int(c)})
		var tot float64
		for _, r := range bd.Rows {
			tot += r.Percent
		}
		return tot > 99.999 && tot < 100.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: equal-percentage rows used to inherit map iteration order,
// so the same counts could render Table 1 differently between runs.
func TestBreakdownTieBreakDeterministic(t *testing.T) {
	counts := map[string]int{"delta": 10, "alpha": 10, "charlie": 10, "bravo": 10, "top": 60}
	want := []string{"top", "alpha", "bravo", "charlie", "delta"}
	for i := 0; i < 50; i++ {
		b := NewBreakdown("tie", counts)
		for j, row := range b.Rows {
			if row.Label != want[j] {
				t.Fatalf("run %d: row %d = %q, want %q (rows %+v)", i, j, row.Label, want[j], b.Rows)
			}
		}
	}
}

// Regression: Chart must tolerate non-positive dimensions (a caller sizing
// from a terminal can hand it 0 or negative values).
func TestChartNonPositiveDimensions(t *testing.T) {
	d := NewDaily(start, end)
	d.Set(start, "v", 3)
	for _, dim := range [][2]int{{0, 5}, {5, 0}, {0, 0}, {-3, 4}, {4, -2}, {-1, -1}} {
		if out := d.Chart("v", dim[0], dim[1]); out != "" {
			t.Fatalf("Chart(%d, %d) = %q, want empty", dim[0], dim[1], out)
		}
	}
}
