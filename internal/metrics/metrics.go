// Package metrics collects the daily time series behind the paper's
// Figures 3–6 and renders them as aligned tables and ASCII charts. All the
// evaluation figures are per-day aggregates over the rollout calendar, so
// one Daily collector covers them all.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Daily is a set of named per-day series sharing one calendar.
type Daily struct {
	Start  time.Time // midnight UTC of day 0
	Days   int
	series map[string][]float64
}

// NewDaily creates a collector spanning [start, end] inclusive.
func NewDaily(start, end time.Time) *Daily {
	start = midnight(start)
	days := int(midnight(end).Sub(start).Hours()/24) + 1
	if days < 1 {
		days = 1
	}
	return &Daily{Start: start, Days: days, series: make(map[string][]float64)}
}

func midnight(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}

// DayIndex maps a timestamp to its day offset, clamped to the calendar.
func (d *Daily) DayIndex(t time.Time) int {
	idx := int(midnight(t).Sub(d.Start).Hours() / 24)
	if idx < 0 {
		return 0
	}
	if idx >= d.Days {
		return d.Days - 1
	}
	return idx
}

// Date returns the calendar date of a day index.
func (d *Daily) Date(idx int) time.Time {
	return d.Start.AddDate(0, 0, idx)
}

func (d *Daily) row(name string) []float64 {
	s, ok := d.series[name]
	if !ok {
		s = make([]float64, d.Days)
		d.series[name] = s
	}
	return s
}

// Add accumulates v into series name on the day containing t.
func (d *Daily) Add(t time.Time, name string, v float64) {
	d.row(name)[d.DayIndex(t)] += v
}

// Set overwrites the value for the day containing t.
func (d *Daily) Set(t time.Time, name string, v float64) {
	d.row(name)[d.DayIndex(t)] = v
}

// Get reads one day's value.
func (d *Daily) Get(t time.Time, name string) float64 {
	return d.row(name)[d.DayIndex(t)]
}

// Series returns a copy of the named series (zeros if absent).
func (d *Daily) Series(name string) []float64 {
	out := make([]float64, d.Days)
	copy(out, d.row(name))
	return out
}

// Names lists defined series, sorted.
func (d *Daily) Names() []string {
	var out []string
	for k := range d.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum totals a series.
func (d *Daily) Sum(name string) float64 {
	var s float64
	for _, v := range d.row(name) {
		s += v
	}
	return s
}

// SumRange totals a series over [from, to] inclusive.
func (d *Daily) SumRange(name string, from, to time.Time) float64 {
	s := d.row(name)
	var out float64
	for i := d.DayIndex(from); i <= d.DayIndex(to); i++ {
		out += s[i]
	}
	return out
}

// Max returns the peak value and its day index.
func (d *Daily) Max(name string) (float64, int) {
	best, bestIdx := math.Inf(-1), -1
	for i, v := range d.row(name) {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return best, bestIdx
}

// Rank returns the 1-based rank of the given date's value within the
// series (1 = largest).
func (d *Daily) Rank(name string, t time.Time) int {
	s := d.row(name)
	v := s[d.DayIndex(t)]
	rank := 1
	for _, x := range s {
		if x > v {
			rank++
		}
	}
	return rank
}

// Table renders the listed series as an aligned per-day table.
func (d *Daily) Table(names ...string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "date")
	for _, n := range names {
		fmt.Fprintf(&sb, " %14s", n)
	}
	sb.WriteByte('\n')
	for i := 0; i < d.Days; i++ {
		fmt.Fprintf(&sb, "%-12s", d.Date(i).Format("2006-01-02"))
		for _, n := range names {
			fmt.Fprintf(&sb, " %14.1f", d.row(n)[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Chart renders an ASCII bar chart of one series, height rows tall,
// bucketing days into at most width columns.
func (d *Daily) Chart(name string, width, height int) string {
	if width < 1 || height < 1 {
		return ""
	}
	s := d.row(name)
	cols := width
	if cols > d.Days {
		cols = d.Days
	}
	bucket := make([]float64, cols)
	per := float64(d.Days) / float64(cols)
	for i, v := range s {
		b := int(float64(i) / per)
		if b >= cols {
			b = cols - 1
		}
		bucket[b] += v
	}
	maxV := 0.0
	for _, v := range bucket {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (max bucket %.0f, %d days/col)\n", name, maxV, int(math.Ceil(per)))
	for row := height; row >= 1; row-- {
		thresh := maxV * float64(row) / float64(height)
		for _, v := range bucket {
			if maxV > 0 && v >= thresh {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat("-", cols) + "\n")
	return sb.String()
}

// Breakdown is a category→percentage table (the shape of Table 1).
type Breakdown struct {
	Title string
	Rows  []BreakdownRow
}

// BreakdownRow is one category line.
type BreakdownRow struct {
	Label   string
	Percent float64
}

// NewBreakdown converts raw counts into sorted percentage rows.
func NewBreakdown(title string, counts map[string]int) Breakdown {
	total := 0
	for _, c := range counts {
		total += c
	}
	b := Breakdown{Title: title}
	for label, c := range counts {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c) / float64(total)
		}
		b.Rows = append(b.Rows, BreakdownRow{Label: label, Percent: pct})
	}
	// Equal percentages tie-break by label: map iteration order would
	// otherwise make the row order (and every rendered table) flap
	// between runs.
	sort.Slice(b.Rows, func(i, j int) bool {
		if b.Rows[i].Percent != b.Rows[j].Percent {
			return b.Rows[i].Percent > b.Rows[j].Percent
		}
		return b.Rows[i].Label < b.Rows[j].Label
	})
	return b
}

// Percent returns the percentage for a label (0 if absent).
func (b Breakdown) Percent(label string) float64 {
	for _, r := range b.Rows {
		if r.Label == label {
			return r.Percent
		}
	}
	return 0
}

// String renders the breakdown as the paper's two-column table.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-28s %12s\n", b.Title, "Category", "Breakdown (%)")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-28s %12.2f\n", r.Label, r.Percent)
	}
	return sb.String()
}
