package sshd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"openmfa/internal/geoip"
	"openmfa/internal/pam"
	"openmfa/internal/risk"
)

// TestRiskFeedbackLoop verifies the sshd → risk-engine wiring: outcomes
// recorded by the server feed the failure-pressure signal, so a
// brute-force burst drives the account to critical and the gate denies
// even the correct credentials.
func TestRiskFeedbackLoop(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "victim", "right")
	code := h.pairSoft(t, "victim")

	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	h.server.Risk = engine
	// Swap in the risk-gated stack sharing all the same back ends.
	*h.server.Stack = *pam.NewSSHDStackWithRisk(pam.SSHDStackConfig{
		AuthLog:    h.alog,
		IDM:        h.idm,
		Exemptions: h.server.Stack.Entries[2].Module.(*pam.Exempt).List,
		TokenCfg:   h.mode,
		Pairing:    pam.LocalPairing{Dir: h.dir},
		Radius:     h.server.Stack.Entries[3].Module.(*pam.Token).Radius,
	}, engine, nil)

	// A clean login works and builds history.
	good := pwTokenResponder("right", code)
	c, err := Dial(h.addr(), DialOptions{User: "victim", Responder: good})
	if err != nil {
		t.Fatalf("baseline login failed: %v", err)
	}
	c.Close()

	// Brute force: 4 connections × 3 password attempts = 12 failures,
	// each recorded by sshd into the engine (12 × 0.12 = 1.44 ≥ 1.20).
	bad := &FuncResponder{}
	bad.Fn = func(echo bool, prompt string) (string, error) { return "wrong", nil }
	for i := 0; i < 4; i++ {
		Dial(h.addr(), DialOptions{User: "victim", Responder: bad})
		h.sim.Advance(time.Minute)
	}

	// Now even the right password + right token is refused by the gate.
	_, err = Dial(h.addr(), DialOptions{User: "victim", Responder: good})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("post-burst login err = %v, want denied by risk gate", err)
	}

	// After the 30-minute pressure window drains, service resumes.
	h.sim.Advance(45 * time.Minute)
	c2, err := Dial(h.addr(), DialOptions{User: "victim", Responder: good})
	if err != nil {
		t.Fatalf("login after cool-down failed: %v", err)
	}
	c2.Close()
}

// TestRiskGateDoesNotBreakGateways ensures the risk stack leaves exempt
// automation untouched when its pattern is familiar.
func TestRiskGateDoesNotBreakGateways(t *testing.T) {
	h := newHarness(t, "permit : gw : ALL : ALL")
	h.addUser(t, "gw", "pw")
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	h.server.Risk = engine
	*h.server.Stack = *pam.NewSSHDStackWithRisk(pam.SSHDStackConfig{
		AuthLog:    h.alog,
		IDM:        h.idm,
		Exemptions: h.server.Stack.Entries[2].Module.(*pam.Exempt).List,
		TokenCfg:   h.mode,
		Pairing:    pam.LocalPairing{Dir: h.dir},
		Radius:     h.server.Stack.Entries[3].Module.(*pam.Token).Radius,
	}, engine, nil)

	pwOnly := &FuncResponder{}
	pwOnly.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		t.Errorf("unexpected prompt %q", prompt)
		return "", nil
	}
	for i := 0; i < 5; i++ {
		c, err := Dial(h.addr(), DialOptions{User: "gw", Responder: pwOnly})
		if err != nil {
			t.Fatalf("gateway login %d failed: %v", i, err)
		}
		c.Close()
		h.sim.Advance(time.Hour)
	}
}
