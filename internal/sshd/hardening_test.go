package sshd

import (
	"net"
	"testing"
	"time"

	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

// TestStalledClientDisconnected is the regression test for the unbounded
// pre-auth hang: a client that connects and never speaks used to hold its
// handler goroutine (and its conn map slot) forever.
func TestStalledClientDisconnected(t *testing.T) {
	leakcheck.Check(t)
	h := newHarness(t, "")
	h.server.AuthTimeout = 200 * time.Millisecond
	h.server.Obs = obs.NewRegistry()

	raw, err := net.Dial("tcp", h.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Say nothing. The server must hang up on its own.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := raw.Read(make([]byte, 64)); err == nil {
		// The server may first emit a TError frame; the disconnect is
		// what matters.
		if _, err := raw.Read(make([]byte, 64)); err == nil {
			t.Fatal("server kept a silent client connected")
		}
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("disconnect took %v, want about the 200ms grace time", took)
	}
	if v := h.server.Obs.Counter("sshd_io_timeouts_total").Value(); v < 1 {
		t.Fatal("io-timeout counter not incremented")
	}
}

func TestIdleSessionDisconnected(t *testing.T) {
	leakcheck.Check(t)
	h := newHarness(t, "")
	h.server.IdleTimeout = 200 * time.Millisecond
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")

	c, err := Dial(h.addr(), DialOptions{
		User: "alice", TTY: true, Responder: pwTokenResponder("pw", code),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// An active session survives: consecutive execs inside the window.
	if out, err := c.Exec("whoami"); err != nil || out != "alice" {
		t.Fatalf("exec = %q, %v", out, err)
	}

	time.Sleep(600 * time.Millisecond)
	// Either the write or the read of this exec must observe the hangup;
	// allow one extra round for the error to surface.
	if _, err := c.Exec("whoami"); err == nil {
		if _, err := c.Exec("whoami"); err == nil {
			t.Fatal("idle session survived past IdleTimeout")
		}
	}
}

func TestConnectionCapRejectsExcess(t *testing.T) {
	leakcheck.Check(t)
	h := newHarness(t, "")
	h.server.MaxConns = 1
	h.server.Obs = obs.NewRegistry()
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")

	first, err := Dial(h.addr(), DialOptions{
		User: "alice", TTY: true, Responder: pwTokenResponder("pw", code),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The slot is taken: the second connection is closed before auth.
	if c, err := Dial(h.addr(), DialOptions{
		User: "alice", TTY: true, Responder: pwTokenResponder("pw", code),
	}); err == nil {
		c.Close()
		t.Fatal("dial beyond MaxConns succeeded")
	}
	if v := h.server.Obs.Counter("sshd_conns_rejected_total", "reason", "capacity").Value(); v < 1 {
		t.Fatal("capacity rejection not counted")
	}

	// Releasing the slot restores service. Advance the simulated clock
	// each try so TOTP replay protection sees a fresh code, not the one
	// the first login consumed.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.sim.Advance(90 * time.Second)
		c, err := Dial(h.addr(), DialOptions{
			User: "alice", TTY: true, Responder: pwTokenResponder("pw", code),
		})
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered after the capacity slot freed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
