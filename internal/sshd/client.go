package sshd

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"

	"openmfa/internal/sshwire"
)

// Responder supplies answers to keyboard-interactive prompts, like an SSH
// client's askpass plumbing. Info receives non-prompt messages.
type Responder interface {
	Answer(echo bool, prompt string) (string, error)
	Info(msg string)
}

// FuncResponder adapts a function (Info messages are collected in Infos).
type FuncResponder struct {
	Fn    func(echo bool, prompt string) (string, error)
	Infos []string
}

// Answer implements Responder.
func (f *FuncResponder) Answer(echo bool, prompt string) (string, error) {
	return f.Fn(echo, prompt)
}

// Info implements Responder.
func (f *FuncResponder) Info(msg string) { f.Infos = append(f.Infos, msg) }

// Client is a simulated SSH client connection.
type Client struct {
	wc     *sshwire.Conn
	Banner string
	authed bool
}

// DialOptions configures a connection attempt.
type DialOptions struct {
	User string
	// Key, when set, is offered as the first factor before passwords.
	Key ed25519.PrivateKey
	// TTY and Shell feed the §4.1 telemetry in the auth log.
	TTY   bool
	Shell string
	// Responder answers PAM prompts (password, token code,
	// acknowledgements). Required unless the login is fully exempt and
	// key-based.
	Responder Responder
	// LocalAddr optionally pins the client's source IP (tests use
	// loopback aliases to model internal vs external origins).
	LocalAddr string
	// Dialer overrides the TCP dial; nil means a plain net.Dialer. Chaos
	// tests inject a faultnet dialer here. Ignored when LocalAddr is set.
	Dialer func(network, addr string) (net.Conn, error)
}

// ErrDenied is returned when the server refuses entry.
var ErrDenied = errors.New("sshd: permission denied")

// Dial connects to addr and authenticates per opts.
func Dial(addr string, opts DialOptions) (*Client, error) {
	dial := opts.Dialer
	if dial == nil || opts.LocalAddr != "" {
		var d net.Dialer
		if opts.LocalAddr != "" {
			la, err := net.ResolveTCPAddr("tcp", opts.LocalAddr)
			if err != nil {
				return nil, fmt.Errorf("sshd: %w", err)
			}
			d.LocalAddr = la
		}
		dial = d.Dial
	}
	raw, err := dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sshd: %w", err)
	}
	c := &Client{wc: sshwire.NewConn(raw)}
	if err := c.auth(opts); err != nil {
		raw.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) auth(opts DialOptions) error {
	shell := opts.Shell
	if shell == "" {
		shell = "/bin/bash"
	}
	if err := c.wc.Send(&sshwire.Msg{T: sshwire.THello, User: opts.User, TTY: opts.TTY, Shell: shell}); err != nil {
		return err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return err
	}
	if m.T != sshwire.TNonce {
		return fmt.Errorf("sshd: expected nonce, got %q", m.T)
	}
	c.Banner = m.Banner

	if opts.Key != nil {
		sig := ed25519.Sign(opts.Key, m.Nonce)
		pub := opts.Key.Public().(ed25519.PublicKey)
		if err := c.wc.Send(&sshwire.Msg{T: sshwire.TPubkey, Pub: pub, Sig: sig}); err != nil {
			return err
		}
		if _, err := c.wc.Recv(); err != nil { // pubkey-ok / pubkey-no either way
			return err
		}
	}
	// Ready sentinel: enter the PAM phase.
	if err := c.wc.Send(&sshwire.Msg{T: sshwire.TAnswer}); err != nil {
		return err
	}

	for {
		m, err := c.wc.Recv()
		if err != nil {
			return err
		}
		switch m.T {
		case sshwire.TPrompt:
			if opts.Responder == nil {
				return errors.New("sshd: prompt received but no responder configured")
			}
			ans, err := opts.Responder.Answer(m.Echo, m.Msg)
			if err != nil {
				return err
			}
			if err := c.wc.Send(&sshwire.Msg{T: sshwire.TAnswer, Value: ans}); err != nil {
				return err
			}
		case sshwire.TInfo:
			if opts.Responder != nil {
				opts.Responder.Info(m.Msg)
			}
		case sshwire.TResult:
			if !m.OK {
				return ErrDenied
			}
			c.authed = true
			return nil
		case sshwire.TError:
			return fmt.Errorf("sshd: server error: %s", m.Msg)
		default:
			return fmt.Errorf("sshd: unexpected frame %q", m.T)
		}
	}
}

// Exec runs a command in the session and returns its output.
func (c *Client) Exec(cmd string) (string, error) {
	if !c.authed {
		return "", errors.New("sshd: not authenticated")
	}
	if err := c.wc.Send(&sshwire.Msg{T: sshwire.TExec, Cmd: cmd}); err != nil {
		return "", err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return "", err
	}
	if m.T != sshwire.TExecOut {
		return "", fmt.Errorf("sshd: unexpected frame %q", m.T)
	}
	return m.Out, nil
}

// OpenChannel opens a multiplexed session over the existing authenticated
// connection — no new authentication round (§5).
func (c *Client) OpenChannel() error {
	if !c.authed {
		return errors.New("sshd: not authenticated")
	}
	if err := c.wc.Send(&sshwire.Msg{T: sshwire.TChannel}); err != nil {
		return err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return err
	}
	if m.T != sshwire.TChannelOK {
		return fmt.Errorf("sshd: channel refused: %q", m.T)
	}
	return nil
}

// Close ends the session politely.
func (c *Client) Close() error {
	if c.authed {
		c.wc.Send(&sshwire.Msg{T: sshwire.TBye})
	}
	return c.wc.Close()
}
