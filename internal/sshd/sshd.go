// Package sshd implements the login-node daemon: the SSH-substitute front
// door that performs public-key first-factor verification, hands the rest
// of the authentication decision to the PAM stack (Figure 1), writes the
// auth log records that both the pubkey PAM module and the §4.1
// information-gathering pipeline consume, enforces the password retry
// budget, and supports connection multiplexing (§5: "Perhaps most popular
// of all was the adoption of SSH multiplexing which allowed for one
// connection to be established via MFA and subsequent connections to the
// same host to utilize the already existing SSH connection").
package sshd

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/eventstream"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/pam"
	"openmfa/internal/risk"
	"openmfa/internal/sshwire"
)

// DefaultMaxAuthTries mirrors OpenSSH's default of three interactive
// attempts before disconnect ("up to a maximum of two more times", §3.4).
const DefaultMaxAuthTries = 3

// DefaultAuthTimeout mirrors OpenSSH's LoginGraceTime: a client that has
// not completed authentication within it is disconnected. Before this
// existed a stalled client held its handler goroutine forever.
const DefaultAuthTimeout = 2 * time.Minute

// DefaultIdleTimeout disconnects authenticated sessions with no frames in
// either direction for this long (OpenSSH's ClientAliveInterval analog).
const DefaultIdleTimeout = 30 * time.Minute

// DefaultMaxConns caps concurrent connections so a connection flood
// degrades into fast rejections instead of unbounded goroutine growth.
const DefaultMaxConns = 4096

// Server is a login node.
type Server struct {
	// IDM resolves accounts and authorized keys (required).
	IDM *idm.IDM
	// AuthLog receives auth events (required). It must be the same log
	// the PAM pubkey module reads.
	AuthLog *authlog.Log
	// Stack is the PAM configuration (required).
	Stack *pam.Stack
	// Banner is shown before authentication (phase-3 deployments updated
	// it with MFA instructions, §4.2).
	Banner string
	// MaxAuthTries bounds PAM stack restarts; zero means 3.
	MaxAuthTries int
	// AuthTimeout bounds the whole pre-auth conversation (hello through
	// PAM verdict). Zero means DefaultAuthTimeout; negative disables the
	// deadline. It is enforced in wall-clock time regardless of Clock,
	// because net.Conn deadlines are wall-clock by contract.
	AuthTimeout time.Duration
	// IdleTimeout bounds the gap between session frames after
	// authentication. Zero means DefaultIdleTimeout; negative disables.
	IdleTimeout time.Duration
	// MaxConns caps concurrent connections; excess connections are closed
	// immediately and counted. Zero means DefaultMaxConns; negative means
	// unlimited.
	MaxConns int
	// Listen binds the server socket; nil means net.Listen. Chaos tests
	// inject a faultnet binder here.
	Listen func(network, addr string) (net.Listener, error)
	// Clock defaults to real time. It feeds auth-log timestamps and the
	// PAM stack; I/O deadlines deliberately ignore it (see AuthTimeout).
	Clock clock.Clock
	// Risk, when set, receives login outcomes so the dynamic-risk
	// engine's history tracks reality (pair with NewSSHDStackWithRisk).
	Risk *risk.Engine
	// Obs, when set, receives connection and auth-outcome metrics; it is
	// also handed to the PAM stack via the per-attempt Context.
	Obs *obs.Registry
	// Logger, when set, receives structured auth-outcome lines
	// (component=sshd) carrying the per-connection trace ID.
	Logger *obs.Logger
	// Spans, when set, records an sshd.conversation span per connection
	// (with per-module and RADIUS-RTT children from the PAM stack) under
	// the connection's trace ID.
	Spans *obs.SpanStore
	// Events, when set, receives one typed login event per authentication
	// decision on the operational analytics bus.
	Events *eventstream.Bus

	mu     sync.Mutex
	ln     net.Listener
	wg     sync.WaitGroup
	closed bool
	conns  map[net.Conn]struct{}

	// Counters for tests and metrics.
	accepted atomic.Int64
	rejected atomic.Int64
}

func (s *Server) clk() clock.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return clock.Real{}
}

func (s *Server) maxTries() int {
	if s.MaxAuthTries > 0 {
		return s.MaxAuthTries
	}
	return DefaultMaxAuthTries
}

func (s *Server) authTimeout() time.Duration {
	switch {
	case s.AuthTimeout > 0:
		return s.AuthTimeout
	case s.AuthTimeout < 0:
		return 0 // disabled
	}
	return DefaultAuthTimeout
}

func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.IdleTimeout > 0:
		return s.IdleTimeout
	case s.IdleTimeout < 0:
		return 0
	}
	return DefaultIdleTimeout
}

func (s *Server) maxConns() int {
	switch {
	case s.MaxConns > 0:
		return s.MaxConns
	case s.MaxConns < 0:
		return 0 // unlimited
	}
	return DefaultMaxConns
}

// noteIOErr counts deadline expiries so operators can tell a stalled-peer
// storm from ordinary disconnects.
func (s *Server) noteIOErr(err error) {
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		return
	}
	if s.Obs != nil {
		s.Obs.Counter("sshd_io_timeouts_total").Inc()
	}
	s.Logger.Warn("io timeout", "component", "sshd")
}

// Accepted reports successful logins since start.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Rejected reports failed login attempts since start.
func (s *Server) Rejected() int64 { return s.rejected.Load() }

// ListenAndServe binds addr and serves until Close; it returns once bound.
func (s *Server) ListenAndServe(addr string) error {
	listen := s.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("sshd: server closed")
	}
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			if max := s.maxConns(); max > 0 && len(s.conns) >= max {
				s.mu.Unlock()
				conn.Close()
				if s.Obs != nil {
					s.Obs.Counter("sshd_conns_rejected_total", "reason", "capacity").Inc()
				}
				s.Logger.Warn("connection rejected at capacity",
					"component", "sshd", "max_conns", max)
				continue
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					s.mu.Lock()
					delete(s.conns, conn)
					s.mu.Unlock()
				}()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, disconnects active sessions, and waits for
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// remoteConv bridges the PAM conversation over the wire. The receive
// frame is reused across prompts (a login is several prompts, every
// retry restarts them all).
type remoteConv struct {
	wc *sshwire.Conn
	m  sshwire.Msg
}

func (r *remoteConv) Prompt(echo bool, msg string) (string, error) {
	if err := r.wc.Send(&sshwire.Msg{T: sshwire.TPrompt, Msg: msg, Echo: echo}); err != nil {
		return "", err
	}
	if err := r.wc.RecvInto(&r.m); err != nil {
		return "", err
	}
	if r.m.T != sshwire.TAnswer {
		return "", fmt.Errorf("sshd: expected answer, got %q", r.m.T)
	}
	return r.m.Value, nil
}

func (r *remoteConv) Info(msg string) error {
	return r.wc.Send(&sshwire.Msg{T: sshwire.TInfo, Msg: msg})
}

func splitHostPort(addr net.Addr) (net.IP, int) {
	host, portStr, err := net.SplitHostPort(addr.String())
	if err != nil {
		return nil, 0
	}
	port, _ := strconv.Atoi(portStr)
	return net.ParseIP(host), port
}

func (s *Server) serveConn(raw net.Conn) {
	defer raw.Close()
	// Every connection gets a trace ID; it tags this layer's log lines,
	// rides into the PAM stack, and crosses the RADIUS wire inside a
	// Proxy-State attribute so the back end's lines join the same trace.
	trace := obs.NewTraceID()
	if s.Obs != nil {
		s.Obs.Counter("sshd_connections_total").Inc()
		open := s.Obs.Gauge("sshd_open_connections")
		open.Add(1)
		defer open.Add(-1)
	}
	wc := sshwire.NewConn(raw)
	ip, port := splitHostPort(raw.RemoteAddr())

	// LoginGraceTime: one wall-clock deadline covers the entire pre-auth
	// conversation, so a client that stalls at any phase (or a network
	// that eats our prompts) cannot pin this goroutine.
	if d := s.authTimeout(); d > 0 {
		raw.SetDeadline(time.Now().Add(d))
	}

	hello, err := wc.Recv()
	if err != nil || hello.T != sshwire.THello || hello.User == "" {
		s.noteIOErr(err)
		wc.Send(&sshwire.Msg{T: sshwire.TError, Msg: "expected hello"})
		return
	}
	user := strings.ToLower(hello.User)

	// Session nonce for pubkey proof; the banner rides along.
	nonce := cryptoutil.RandomBytes(32)
	if err := wc.Send(&sshwire.Msg{T: sshwire.TNonce, Nonce: nonce, Banner: s.Banner}); err != nil {
		return
	}

	// Optional public-key phase: zero or more attempts, then the client
	// proceeds (by answering prompts) — like ssh trying each identity.
	m, err := wc.Recv()
	if err != nil {
		return
	}
	for m.T == sshwire.TPubkey {
		if s.verifyPubkey(user, nonce, m.Pub, m.Sig) {
			s.AuthLog.Append(authlog.Event{
				Time: s.clk().Now(), Type: authlog.AcceptedPublickey,
				User: user, Addr: ip.String(), Port: port,
				TTY: hello.TTY, Shell: hello.Shell,
				Detail: fmt.Sprintf("ED25519 %x", m.Pub[:8]),
			})
			if err := wc.Send(&sshwire.Msg{T: sshwire.TPubkeyOK}); err != nil {
				return
			}
		} else {
			if err := wc.Send(&sshwire.Msg{T: sshwire.TPubkeyNo}); err != nil {
				return
			}
		}
		// Client either tries another key or signals readiness for the
		// PAM phase with an empty answer frame.
		m, err = wc.Recv()
		if err != nil {
			s.noteIOErr(err)
			return
		}
	}
	if m.T != sshwire.TAnswer { // "ready" sentinel
		wc.Send(&sshwire.Msg{T: sshwire.TError, Msg: "expected ready"})
		return
	}

	// PAM phase with the retry budget: "the PAM stack is restarted and
	// the user is prompted once again ... before SSH disconnect."
	conv := &remoteConv{wc: wc}
	authStart := time.Now()
	// The conversation span covers the whole PAM phase (all retry
	// attempts); each module and RADIUS exchange hangs off it as a child.
	span := s.Spans.Start(trace, "sshd.conversation")
	span.SetAttr("user", user)
	var authErr error
	var lastCtx *pam.Context
	for attempt := 0; attempt < s.maxTries(); attempt++ {
		ctx := &pam.Context{
			User: user, RemoteAddr: ip, Service: "sshd",
			Conv: conv, Now: s.clk().Now,
			Trace: trace, Metrics: s.Obs, Logger: s.Logger,
			Spans: s.Spans, Span: span, Events: s.Events,
		}
		lastCtx = ctx
		authErr = s.Stack.Authenticate(ctx)
		if authErr == nil {
			break
		}
		if s.Risk != nil {
			s.Risk.RecordFailure(user, ip, s.clk().Now())
		}
		s.AuthLog.Append(authlog.Event{
			Time: s.clk().Now(), Type: authlog.FailedPassword,
			User: user, Addr: ip.String(), Port: port,
			TTY: hello.TTY, Shell: hello.Shell,
		})
	}
	result := "accept"
	if authErr != nil {
		result = "reject"
	}
	span.SetAttr("result", result)
	span.End()
	if s.Obs != nil {
		s.Obs.Histogram("sshd_auth_duration_seconds", nil).ObserveSince(authStart)
		s.Obs.Counter("sshd_auth_total", "result", result).Inc()
	}
	s.Logger.Info("auth", "component", "sshd", "trace", trace,
		"user", user, "addr", ip.String(), "result", result)
	if s.Events != nil {
		mfaUsed, _ := lastCtx.Data[pam.DataMFAUsed].(bool)
		method, _ := lastCtx.Data[pam.DataMFAMethod].(string)
		s.Events.Publish(eventstream.Event{
			Time: s.clk().Now(), Type: eventstream.TypeLogin, Component: "sshd",
			Trace: trace, User: user, Addr: ip.String(), Result: result,
			MFA: mfaUsed && authErr == nil, Method: method,
			TTY: hello.TTY, Shell: hello.Shell,
			Duration: time.Since(authStart),
		})
	}
	if authErr != nil {
		s.rejected.Add(1)
		wc.Send(&sshwire.Msg{T: sshwire.TResult, OK: false, Msg: "Permission denied"})
		return
	}
	if s.Risk != nil {
		s.Risk.RecordSuccess(user, ip, s.clk().Now())
	}
	s.accepted.Add(1)
	s.AuthLog.Append(authlog.Event{
		Time: s.clk().Now(), Type: authlog.SessionOpen,
		User: user, Addr: ip.String(), Port: port,
		TTY: hello.TTY, Shell: hello.Shell,
	})
	if err := wc.Send(&sshwire.Msg{T: sshwire.TResult, OK: true, Msg: "welcome"}); err != nil {
		return
	}

	// Auth is done: trade the login-grace deadline for idle policing.
	raw.SetDeadline(time.Time{})

	// Session phase: exec requests and multiplexed channels, none of
	// which re-authenticate.
	s.session(raw, wc, user, ip, port, hello)
}

func (s *Server) verifyPubkey(user string, nonce, pub, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	keys, err := s.IDM.PublicKeys(user)
	if err != nil {
		return false
	}
	candidate := ed25519.PublicKey(pub)
	authorized := false
	for _, k := range keys {
		if k.Equal(candidate) {
			authorized = true
			break
		}
	}
	if !authorized {
		return false
	}
	return ed25519.Verify(candidate, nonce, sig)
}

func (s *Server) session(raw net.Conn, wc *sshwire.Conn, user string, ip net.IP, port int, hello *sshwire.Msg) {
	idle := s.idleTimeout()
	var m sshwire.Msg // reused across the session's frames
	for {
		if idle > 0 {
			raw.SetReadDeadline(time.Now().Add(idle))
		}
		if err := wc.RecvInto(&m); err != nil {
			s.noteIOErr(err)
			return
		}
		switch m.T {
		case sshwire.TExec:
			out := s.exec(user, m.Cmd)
			if err := wc.Send(&sshwire.Msg{T: sshwire.TExecOut, OK: true, Out: out}); err != nil {
				return
			}
		case sshwire.TChannel:
			// Multiplexing: a new channel on an authenticated
			// connection opens a session without touching PAM.
			s.AuthLog.Append(authlog.Event{
				Time: s.clk().Now(), Type: authlog.SessionOpen,
				User: user, Addr: ip.String(), Port: port,
				TTY: hello.TTY, Shell: hello.Shell, Detail: "mux",
			})
			if err := wc.Send(&sshwire.Msg{T: sshwire.TChannelOK}); err != nil {
				return
			}
		case sshwire.TBye:
			s.AuthLog.Append(authlog.Event{
				Time: s.clk().Now(), Type: authlog.SessionClose,
				User: user, Addr: ip.String(), Port: port,
			})
			return
		default:
			wc.Send(&sshwire.Msg{T: sshwire.TError, Msg: "unexpected " + m.T})
			return
		}
	}
}

// exec simulates a tiny command set so examples and the rollout simulator
// can model data movement and job management.
func (s *Server) exec(user, cmd string) string {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "hostname":
		return "login1.hpc.example"
	case "whoami":
		return user
	case "date":
		return s.clk().Now().UTC().Format(time.RFC3339)
	case "squeue":
		return "JOBID PARTITION NAME USER ST\n123 normal job1 " + user + " R"
	case "scp", "rsync", "sftp":
		return "transfer complete"
	default:
		return "sh: " + fields[0] + ": command simulated"
	}
}
