package sshd

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"strings"
	"testing"
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/clock"
	"openmfa/internal/directory"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/pam"
	"openmfa/internal/radius"
	"openmfa/internal/store"
)

var t0 = time.Date(2016, 10, 10, 9, 0, 0, 0, time.UTC)

type harness struct {
	sim    *clock.Sim
	idm    *idm.IDM
	dir    *directory.Dir
	otp    *otpd.Server
	alog   *authlog.Log
	server *Server
	mode   *pam.StaticConfig
}

func newHarness(t testing.TB, aclRules string) *harness {
	t.Helper()
	sim := clock.NewSim(t0)
	dir := directory.New()
	h := &harness{
		sim: sim,
		dir: dir,
		idm: idm.New(store.OpenMemory(), dir, sim),
	}
	var err error
	h.otp, err = otpd.New(otpd.Config{
		DB:            store.OpenMemory(),
		EncryptionKey: bytes.Repeat([]byte{3}, 32),
		Clock:         sim,
		SMS:           otpd.SMSSenderFunc(func(string, string) error { return nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.alog, err = authlog.New("", 1024)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := accessctl.Parse(aclRules)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("sshd-test-secret")
	rsrv := &radius.Server{Secret: secret, Handler: &otpd.RadiusHandler{OTP: h.otp}}
	if err := rsrv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })

	mode := pam.StaticConfig{Mode: pam.ModeFull}
	h.mode = &mode
	stack := pam.NewSSHDStack(pam.SSHDStackConfig{
		AuthLog:    h.alog,
		IDM:        h.idm,
		Exemptions: accessctl.NewList(rules),
		TokenCfg:   h.mode,
		Pairing:    pam.LocalPairing{Dir: dir},
		Radius:     radius.NewPool([]string{rsrv.Addr().String()}, secret, 2*time.Second, 0),
	})
	h.server = &Server{
		IDM: h.idm, AuthLog: h.alog, Stack: stack, Clock: sim,
		Banner: "** MFA required: pair a device at https://portal.hpc.example **",
	}
	if err := h.server.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.server.Close() })
	return h
}

func (h *harness) addr() string { return h.server.Addr().String() }

func (h *harness) addUser(t testing.TB, user, pw string) {
	t.Helper()
	if _, err := h.idm.Create(user, user+"@x", pw, idm.ClassUser); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) pairSoft(t testing.TB, user string) func() string {
	t.Helper()
	enr, err := h.otp.InitSoftToken(user)
	if err != nil {
		t.Fatal(err)
	}
	h.idm.SetPairing(user, idm.PairingSoft)
	return func() string {
		c, _ := otp.TOTP(enr.Secret, h.sim.Now(), h.otp.OTPOptions())
		return c
	}
}

// responder answers password prompts with pw and token prompts with code().
func pwTokenResponder(pw string, code func() string) *FuncResponder {
	r := &FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		switch {
		case strings.Contains(prompt, "Password"):
			return pw, nil
		case strings.Contains(prompt, "Token"):
			if code == nil {
				return "000000", nil
			}
			return code(), nil
		default:
			return "", nil // acknowledgements
		}
	}
	return r
}

func TestPasswordPlusTokenLogin(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	c, err := Dial(h.addr(), DialOptions{
		User: "alice", TTY: true, Responder: pwTokenResponder("pw", code),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !strings.Contains(c.Banner, "MFA required") {
		t.Fatalf("banner = %q", c.Banner)
	}
	out, err := c.Exec("whoami")
	if err != nil || out != "alice" {
		t.Fatalf("exec = %q, %v", out, err)
	}
	if h.server.Accepted() != 1 {
		t.Fatalf("accepted = %d", h.server.Accepted())
	}
}

func TestPubkeySkipsPassword(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "bob", "pw")
	code := h.pairSoft(t, "bob")
	pub, priv, _ := ed25519.GenerateKey(nil)
	h.idm.AddPublicKey("bob", pub)

	var prompts []string
	r := &FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		prompts = append(prompts, prompt)
		return code(), nil
	}
	c, err := Dial(h.addr(), DialOptions{User: "bob", Key: priv, Responder: r})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, p := range prompts {
		if strings.Contains(p, "Password") {
			t.Fatalf("password prompted despite pubkey: %v", prompts)
		}
	}
	if len(prompts) != 1 || !strings.Contains(prompts[0], "Token") {
		t.Fatalf("prompts = %v", prompts)
	}
}

func TestUnauthorizedKeyFallsBackToPassword(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "bob", "pw")
	code := h.pairSoft(t, "bob")
	_, stranger, _ := ed25519.GenerateKey(nil) // never registered
	r := pwTokenResponder("pw", code)
	c, err := Dial(h.addr(), DialOptions{User: "bob", Key: stranger, Responder: r})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestWrongPasswordThreeTriesThenDisconnect(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "alice", "right")
	h.pairSoft(t, "alice")
	attempts := 0
	r := &FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		attempts++
		return "wrong", nil
	}
	_, err := Dial(h.addr(), DialOptions{User: "alice", Responder: r})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if attempts != DefaultMaxAuthTries {
		t.Fatalf("password attempts = %d, want %d", attempts, DefaultMaxAuthTries)
	}
	if h.server.Rejected() != 1 {
		t.Fatalf("rejected = %d", h.server.Rejected())
	}
}

func TestRetrySucceedsOnSecondPassword(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "alice", "right")
	code := h.pairSoft(t, "alice")
	pwAttempt := 0
	r := &FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			pwAttempt++
			if pwAttempt == 1 {
				return "typo", nil
			}
			return "right", nil
		}
		return code(), nil
	}
	c, err := Dial(h.addr(), DialOptions{User: "alice", Responder: r})
	if err != nil {
		t.Fatalf("second-try login failed: %v", err)
	}
	c.Close()
	if pwAttempt != 2 {
		t.Fatalf("password attempts = %d", pwAttempt)
	}
}

func TestGatewayPubkeyExemptNonInteractive(t *testing.T) {
	h := newHarness(t, "permit : gateway1 : ALL : ALL")
	h.addUser(t, "gateway1", "pw")
	pub, priv, _ := ed25519.GenerateKey(nil)
	h.idm.AddPublicKey("gateway1", pub)
	// No responder at all: any prompt would error the login.
	c, err := Dial(h.addr(), DialOptions{User: "gateway1", Key: priv, Shell: "/bin/sh"})
	if err != nil {
		t.Fatalf("non-interactive gateway login failed: %v", err)
	}
	defer c.Close()
	out, err := c.Exec("scp data.tar remote:")
	if err != nil || out != "transfer complete" {
		t.Fatalf("exec = %q, %v", out, err)
	}
}

func TestMultiplexing(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	tokenPrompts := 0
	r := &FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Token") {
			tokenPrompts++
			return code(), nil
		}
		return "pw", nil
	}
	c, err := Dial(h.addr(), DialOptions{User: "alice", TTY: true, Responder: r})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// "one connection ... established via MFA and subsequent connections
	// to the same host ... utilize the already existing SSH connection."
	for i := 0; i < 5; i++ {
		if err := c.OpenChannel(); err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
	}
	if tokenPrompts != 1 {
		t.Fatalf("token prompted %d times; multiplexing must not re-auth", tokenPrompts)
	}
	// The auth log shows 1 + 5 session opens, 5 of them mux.
	var opens, mux int
	h.alog.ScanRecent(func(e authlog.Event) bool {
		if e.Type == authlog.SessionOpen {
			opens++
			if e.Detail == "mux" {
				mux++
			}
		}
		return true
	})
	if opens != 6 || mux != 5 {
		t.Fatalf("opens=%d mux=%d", opens, mux)
	}
}

func TestAuthlogTTYTelemetry(t *testing.T) {
	h := newHarness(t, "")
	h.addUser(t, "scripted", "pw")
	h.mode.Mode = pam.ModeOff // single factor for this telemetry test
	c, err := Dial(h.addr(), DialOptions{
		User: "scripted", TTY: false, Shell: "/usr/bin/scp",
		Responder: pwTokenResponder("pw", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	found := false
	h.alog.ScanRecent(func(e authlog.Event) bool {
		if e.Type == authlog.SessionOpen && e.User == "scripted" {
			found = true
			if e.TTY || e.Shell != "/usr/bin/scp" {
				t.Fatalf("telemetry = %+v", e)
			}
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no session-open event")
	}
}

func TestExecBeforeAuthRejected(t *testing.T) {
	c := &Client{}
	if _, err := c.Exec("whoami"); err == nil {
		t.Fatal("exec without auth succeeded")
	}
	if err := c.OpenChannel(); err == nil {
		t.Fatal("channel without auth succeeded")
	}
}

func TestExecCommandSet(t *testing.T) {
	h := newHarness(t, "")
	h.mode.Mode = pam.ModeOff
	h.addUser(t, "u", "pw")
	c, err := Dial(h.addr(), DialOptions{User: "u", Responder: pwTokenResponder("pw", nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for cmd, want := range map[string]string{
		"hostname":   "login1.hpc.example",
		"whoami":     "u",
		"squeue":     "JOBID",
		"frobnicate": "command simulated",
	} {
		out, err := c.Exec(cmd)
		if err != nil || !strings.Contains(out, want) {
			t.Fatalf("exec %q = %q, %v", cmd, out, err)
		}
	}
	if out, _ := c.Exec("date"); !strings.Contains(out, "2016-10-10") {
		t.Fatalf("date = %q", out)
	}
}

func TestLockoutAfterTwentyBadTokens(t *testing.T) {
	// End-to-end: repeated bad token codes over SSH trip the otpd
	// lockout; a correct code is then refused until an admin reset.
	h := newHarness(t, "")
	h.addUser(t, "victim", "pw")
	code := h.pairSoft(t, "victim")
	bad := pwTokenResponder("pw", func() string { return "000000" })
	// 3 tries per connection × 7 connections = 21 failures ≥ 20.
	for i := 0; i < 7; i++ {
		Dial(h.addr(), DialOptions{User: "victim", Responder: bad})
	}
	ti, err := h.otp.Token("victim")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Active {
		t.Fatalf("token still active after %d failures", ti.FailCount)
	}
	// Correct code refused while locked out.
	if _, err := Dial(h.addr(), DialOptions{User: "victim", Responder: pwTokenResponder("pw", code)}); !errors.Is(err, ErrDenied) {
		t.Fatalf("locked-out login err = %v", err)
	}
	// Admin clears the counter; entry works again.
	if err := h.otp.ResetFailures("victim"); err != nil {
		t.Fatal(err)
	}
	h.sim.Advance(time.Minute)
	c, err := Dial(h.addr(), DialOptions{User: "victim", Responder: pwTokenResponder("pw", code)})
	if err != nil {
		t.Fatalf("post-reset login failed: %v", err)
	}
	c.Close()
}

func TestBadHelloDropped(t *testing.T) {
	h := newHarness(t, "")
	_, err := Dial(h.addr(), DialOptions{User: ""}) // empty user
	if err == nil {
		t.Fatal("empty user accepted")
	}
}
