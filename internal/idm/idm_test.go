package idm

import (
	"crypto/ed25519"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/directory"
	"openmfa/internal/store"
)

var t0 = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)

func newIDM(t testing.TB) (*IDM, *directory.Dir) {
	t.Helper()
	dir := directory.New()
	return New(store.OpenMemory(), dir, clock.NewSim(t0)), dir
}

func TestCreateAndLookup(t *testing.T) {
	m, dir := newIDM(t)
	a, err := m.Create("CProctor", "cproctor@hpc.example", "pw1", ClassStaff)
	if err != nil {
		t.Fatal(err)
	}
	if a.Username != "cproctor" || a.UID < 1000 || a.Pairing != PairingNone {
		t.Fatalf("account = %+v", a)
	}
	if !a.Created.Equal(t0) {
		t.Fatalf("Created = %v", a.Created)
	}
	got, err := m.Lookup("cproctor")
	if err != nil || got.UID != a.UID {
		t.Fatalf("lookup: %+v, %v", got, err)
	}
	// Directory entry mirrored.
	e, err := dir.Lookup(directory.UserDN("cproctor"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Get("mfapairing") != "none" || e.Get("uid") != "cproctor" {
		t.Fatalf("dir entry = %+v", e)
	}
	// Duplicates and empties rejected.
	if _, err := m.Create("cproctor", "x", "y", ClassUser); err != ErrExists {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := m.Create("  ", "x", "y", ClassUser); err == nil {
		t.Fatal("blank username accepted")
	}
	if _, err := m.Lookup("ghost"); err != ErrNoUser {
		t.Fatalf("missing: %v", err)
	}
}

func TestUIDsUniqueAndResumeAfterRestart(t *testing.T) {
	db := store.OpenMemory()
	m := New(db, nil, clock.NewSim(t0))
	a, _ := m.Create("a", "", "p", ClassUser)
	b, _ := m.Create("b", "", "p", ClassUser)
	if a.UID == b.UID {
		t.Fatal("duplicate uids")
	}
	// New IDM over the same store must not reuse uids.
	m2 := New(db, nil, clock.NewSim(t0))
	c, _ := m2.Create("c", "", "p", ClassUser)
	if c.UID <= b.UID {
		t.Fatalf("uid sequence regressed: %d after %d", c.UID, b.UID)
	}
}

func TestAuthenticate(t *testing.T) {
	m, _ := newIDM(t)
	m.Create("u", "", "correct horse", ClassUser)
	if err := m.Authenticate("u", "correct horse"); err != nil {
		t.Fatal(err)
	}
	if err := m.Authenticate("u", "wrong"); err != ErrBadCreds {
		t.Fatalf("wrong pw: %v", err)
	}
	if err := m.Authenticate("ghost", "x"); err != ErrBadCreds {
		t.Fatalf("ghost: %v", err)
	}
	// Password change.
	if err := m.SetPassword("u", "new"); err != nil {
		t.Fatal(err)
	}
	if err := m.Authenticate("u", "correct horse"); err == nil {
		t.Fatal("old password still works")
	}
	if err := m.Authenticate("u", "new"); err != nil {
		t.Fatal("new password rejected")
	}
}

func TestPublicKeys(t *testing.T) {
	m, _ := newIDM(t)
	m.Create("u", "", "p", ClassUser)
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPublicKey("u", pub); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := m.AddPublicKey("u", pub); err != nil {
		t.Fatal(err)
	}
	keys, err := m.PublicKeys("u")
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys = %d, %v", len(keys), err)
	}
	if !keys[0].Equal(pub) {
		t.Fatal("key mismatch")
	}
	if err := m.AddPublicKey("u", []byte{1, 2}); err == nil {
		t.Fatal("short key accepted")
	}
	if err := m.AddPublicKey("ghost", pub); err != ErrNoUser {
		t.Fatalf("ghost: %v", err)
	}
}

func TestSetPairingMirrorsDirectory(t *testing.T) {
	m, dir := newIDM(t)
	m.Create("storm", "", "p", ClassStaff)
	if err := m.SetPairing("storm", PairingSMS); err != nil {
		t.Fatal(err)
	}
	p, err := m.Pairing("storm")
	if err != nil || p != PairingSMS {
		t.Fatalf("pairing = %v, %v", p, err)
	}
	e, _ := dir.Lookup(directory.UserDN("storm"))
	if e.Get("mfapairing") != "sms" {
		t.Fatalf("dir mfapairing = %q", e.Get("mfapairing"))
	}
	// Unpair.
	m.SetPairing("storm", PairingNone)
	e, _ = dir.Lookup(directory.UserDN("storm"))
	if e.Get("mfapairing") != "none" {
		t.Fatal("unpair not mirrored")
	}
	if err := m.SetPairing("ghost", PairingSoft); err != ErrNoUser {
		t.Fatalf("ghost: %v", err)
	}
}

func TestAllAndCount(t *testing.T) {
	m, _ := newIDM(t)
	for _, u := range []string{"c", "a", "b"} {
		m.Create(u, "", "p", ClassUser)
	}
	all := m.All()
	if len(all) != 3 || m.Count() != 3 {
		t.Fatalf("All=%d Count=%d", len(all), m.Count())
	}
	// Sorted by username (store scan order).
	if all[0].Username != "a" || all[2].Username != "c" {
		t.Fatalf("order: %s %s %s", all[0].Username, all[1].Username, all[2].Username)
	}
}

func TestNilDirectoryOK(t *testing.T) {
	m := New(store.OpenMemory(), nil, nil)
	if _, err := m.Create("u", "", "p", ClassUser); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPairing("u", PairingSoft); err != nil {
		t.Fatal(err)
	}
}
