// Package idm is the identity-management back end: the account database
// that predates MFA in the paper's deployment and that the portal keeps in
// sync with pairing state (§3.5: "the portal notifies the identity
// management back end that the user has configured multi-factor
// authentication and which method").
//
// Each account gets a unique numeric uid shared with the OTP database via
// the directory (§3.1: "an LDAP entry is generated including a unique user
// ID that becomes common to both databases"). The IDM owns first-factor
// credentials: salted password hashes and authorized ed25519 public keys.
package idm

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/directory"
	"openmfa/internal/store"
)

// PairingStatus mirrors the portal-visible MFA state of an account.
type PairingStatus string

// Pairing states. "none" is the pre-MFA default.
const (
	PairingNone     PairingStatus = "none"
	PairingSoft     PairingStatus = "soft"
	PairingSMS      PairingStatus = "sms"
	PairingHard     PairingStatus = "hard"
	PairingTraining PairingStatus = "training"
)

// AccountClass labels the behavioural category of an account (§2: SSH
// users, gateways, community accounts; §3.3: training accounts).
type AccountClass string

// Account classes.
const (
	ClassUser      AccountClass = "user"
	ClassStaff     AccountClass = "staff"
	ClassGateway   AccountClass = "gateway"
	ClassCommunity AccountClass = "community"
	ClassTraining  AccountClass = "training"
)

// Account is one identity.
type Account struct {
	Username     string        `json:"username"`
	UID          int           `json:"uid"`
	Email        string        `json:"email"`
	Class        AccountClass  `json:"class"`
	PasswordHash string        `json:"password_hash"`
	PublicKeys   []string      `json:"public_keys,omitempty"` // base64 ed25519
	Pairing      PairingStatus `json:"pairing"`
	Created      time.Time     `json:"created"`
}

// Errors.
var (
	ErrExists   = errors.New("idm: account already exists")
	ErrNoUser   = errors.New("idm: no such account")
	ErrBadCreds = errors.New("idm: bad credentials")
)

// IDM is the account database. It optionally mirrors entries into a
// directory so the PAM token module's LDAP queries see pairing state.
type IDM struct {
	db        *store.Store
	dir       *directory.Dir
	clk       clock.Clock
	cacheSalt [16]byte

	mu          sync.Mutex
	nextUID     int
	verifyCache map[[32]byte]bool
}

// New builds an IDM over db, mirroring into dir (may be nil), using clk
// for timestamps (nil means real time).
func New(db *store.Store, dir *directory.Dir, clk clock.Clock) *IDM {
	if clk == nil {
		clk = clock.Real{}
	}
	idm := &IDM{db: db, dir: dir, clk: clk, nextUID: 1000,
		verifyCache: make(map[[32]byte]bool)}
	copy(idm.cacheSalt[:], cryptoutil.RandomBytes(16))
	// Resume the uid sequence after a restart. The store was just opened,
	// so the only possible Scan error is ErrClosed — nothing to resume then.
	kvs, _ := db.Scan("acct/")
	for _, kv := range kvs {
		var a Account
		if json.Unmarshal(kv.Value, &a) == nil && a.UID >= idm.nextUID {
			idm.nextUID = a.UID + 1
		}
	}
	return idm
}

func acctKey(username string) string { return "acct/" + strings.ToLower(username) }

// Create registers a new account with an initial password and returns it.
func (m *IDM) Create(username, email, password string, class AccountClass) (*Account, error) {
	username = strings.ToLower(strings.TrimSpace(username))
	if username == "" {
		return nil, errors.New("idm: empty username")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.db.Has(acctKey(username)) {
		return nil, ErrExists
	}
	a := &Account{
		Username:     username,
		UID:          m.nextUID,
		Email:        email,
		Class:        class,
		PasswordHash: cryptoutil.HashPassword(password),
		Pairing:      PairingNone,
		Created:      m.clk.Now().UTC(),
	}
	m.nextUID++
	if err := m.save(a); err != nil {
		return nil, err
	}
	if m.dir != nil {
		err := m.dir.Add(directory.UserDN(username), map[string][]string{
			"uid":         {username},
			"uidnumber":   {fmt.Sprint(a.UID)},
			"mail":        {email},
			"objectclass": {"person", string(class)},
			"mfapairing":  {string(PairingNone)},
		})
		if err != nil && !errors.Is(err, directory.ErrExists) {
			return nil, err
		}
	}
	return a, nil
}

func (m *IDM) save(a *Account) error {
	b, err := json.Marshal(a)
	if err != nil {
		return err
	}
	return m.db.Put(acctKey(a.Username), b)
}

// Lookup fetches an account.
func (m *IDM) Lookup(username string) (*Account, error) {
	b, err := m.db.Get(acctKey(username))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNoUser
	}
	if err != nil {
		return nil, err
	}
	var a Account
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("idm: corrupt account %s: %w", username, err)
	}
	return &a, nil
}

// Authenticate checks a first-factor password. Successful verifications
// are cached per (user, hash, password-digest) the way sssd caches
// credentials on HPC login nodes, so heavily scripted accounts do not pay
// the full PBKDF2 cost on every connection. The cache holds salted SHA-256
// digests, never plaintext, and is invalidated automatically when the
// stored hash changes (SetPassword produces a new salt).
func (m *IDM) Authenticate(username, password string) error {
	a, err := m.Lookup(username)
	if err != nil {
		return ErrBadCreds // do not reveal which accounts exist
	}
	ck := m.cacheKey(username, a.PasswordHash, password)
	m.mu.Lock()
	hit := m.verifyCache[ck]
	m.mu.Unlock()
	if hit {
		return nil
	}
	if !cryptoutil.VerifyPassword(a.PasswordHash, password) {
		return ErrBadCreds
	}
	m.mu.Lock()
	if len(m.verifyCache) > 65536 {
		m.verifyCache = make(map[[32]byte]bool) // crude bound
	}
	m.verifyCache[ck] = true
	m.mu.Unlock()
	return nil
}

func (m *IDM) cacheKey(username, storedHash, password string) [32]byte {
	h := sha256.New()
	h.Write(m.cacheSalt[:])
	h.Write([]byte(username))
	h.Write([]byte{0})
	h.Write([]byte(storedHash))
	h.Write([]byte{0})
	h.Write([]byte(password))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SetPassword replaces the account password.
func (m *IDM) SetPassword(username, password string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, err := m.Lookup(username)
	if err != nil {
		return err
	}
	a.PasswordHash = cryptoutil.HashPassword(password)
	return m.save(a)
}

// AddPublicKey registers an ed25519 public key (base64, raw 32 bytes) for
// SSH public-key authentication.
func (m *IDM) AddPublicKey(username string, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return errors.New("idm: bad public key size")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	a, err := m.Lookup(username)
	if err != nil {
		return err
	}
	enc := base64.StdEncoding.EncodeToString(pub)
	for _, k := range a.PublicKeys {
		if k == enc {
			return nil // idempotent
		}
	}
	a.PublicKeys = append(a.PublicKeys, enc)
	return m.save(a)
}

// PublicKeys returns the account's authorized keys.
func (m *IDM) PublicKeys(username string) ([]ed25519.PublicKey, error) {
	a, err := m.Lookup(username)
	if err != nil {
		return nil, err
	}
	var out []ed25519.PublicKey
	for _, k := range a.PublicKeys {
		b, err := base64.StdEncoding.DecodeString(k)
		if err == nil && len(b) == ed25519.PublicKeySize {
			out = append(out, ed25519.PublicKey(b))
		}
	}
	return out, nil
}

// SetPairing records the MFA pairing status and mirrors it to the
// directory so PAM's LDAP query sees it immediately.
func (m *IDM) SetPairing(username string, p PairingStatus) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, err := m.Lookup(username)
	if err != nil {
		return err
	}
	a.Pairing = p
	if err := m.save(a); err != nil {
		return err
	}
	if m.dir != nil {
		err := m.dir.Modify(directory.UserDN(username), map[string][]string{
			"mfapairing": {string(p)},
		})
		if err != nil && !errors.Is(err, directory.ErrNoEntry) {
			return err
		}
	}
	return nil
}

// Pairing returns the account's pairing status.
func (m *IDM) Pairing(username string) (PairingStatus, error) {
	a, err := m.Lookup(username)
	if err != nil {
		return "", err
	}
	return a.Pairing, nil
}

// All returns every account, sorted by username.
func (m *IDM) All() []*Account {
	var out []*Account
	kvs, _ := m.db.Scan("acct/")
	for _, kv := range kvs {
		var a Account
		if json.Unmarshal(kv.Value, &a) == nil {
			out = append(out, &a)
		}
	}
	return out
}

// Count reports the number of accounts.
func (m *IDM) Count() int { return m.db.Count("acct/") }
