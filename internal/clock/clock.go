// Package clock provides an injectable time source.
//
// Every component in openmfa that needs wall-clock time (TOTP windows,
// exemption expiries, audit timestamps, the rollout simulator's calendar)
// takes a Clock rather than calling time.Now directly. Production code uses
// Real; tests and the rollout simulator use a Sim clock that can be set and
// advanced deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock is a source of current time.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Sleeper is implemented by clocks that can pause a caller. The simulated
// clock wakes sleepers when Advance passes their deadline, so code written
// against Sleeper runs at full speed under simulation.
type Sleeper interface {
	Clock
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is the system clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Sim is a simulated clock. The zero value is not ready for use; call NewSim.
//
// Sim satisfies Sleeper: goroutines blocked in Sleep are released when
// Advance (or Set) moves the clock past their deadline. This lets the
// rollout simulator compress months of calendar time into milliseconds while
// running the same code paths as production.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	deadline time.Time
	ch       chan struct{}
}

// NewSim returns a simulated clock reading t.
func NewSim(t time.Time) *Sim {
	return &Sim{now: t}
}

// Now returns the simulated current time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Set jumps the clock to t, releasing any sleepers whose deadlines have
// passed. Setting the clock backwards is allowed (it models device clock
// drift) but does not re-arm released sleepers.
func (s *Sim) Set(t time.Time) {
	s.mu.Lock()
	s.now = t
	released := s.releaseLocked()
	s.mu.Unlock()
	for _, ch := range released {
		close(ch)
	}
}

// Advance moves the clock forward by d.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	released := s.releaseLocked()
	s.mu.Unlock()
	for _, ch := range released {
		close(ch)
	}
}

func (s *Sim) releaseLocked() []chan struct{} {
	var released []chan struct{}
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if !w.deadline.After(s.now) {
			released = append(released, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
	return released
}

// Sleep blocks until the simulated clock has advanced by at least d.
// A non-positive d returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	w := waiter{deadline: s.now.Add(d), ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	<-w.ch
}

// Sleepers reports how many goroutines are currently blocked in Sleep.
func (s *Sim) Sleepers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

var (
	_ Sleeper = Real{}
	_ Sleeper = (*Sim)(nil)
)
