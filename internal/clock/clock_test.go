package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)

func TestRealNowMonotonicEnough(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestSimNowAndSet(t *testing.T) {
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now = %v, want %v", got, epoch)
	}
	later := epoch.Add(48 * time.Hour)
	s.Set(later)
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("after Set, Now = %v, want %v", got, later)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(30 * time.Second)
	if got := s.Now(); !got.Equal(epoch.Add(30 * time.Second)) {
		t.Fatalf("Now = %v, want epoch+30s", got)
	}
	s.Advance(-10 * time.Second) // drift backwards is allowed
	if got := s.Now(); !got.Equal(epoch.Add(20 * time.Second)) {
		t.Fatalf("Now = %v, want epoch+20s", got)
	}
}

func TestSimSleepReleasedByAdvance(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Hour)
		close(done)
	}()
	// Wait for the sleeper to register.
	for i := 0; s.Sleepers() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Sleepers() != 1 {
		t.Fatal("sleeper never registered")
	}
	s.Advance(30 * time.Minute)
	select {
	case <-done:
		t.Fatal("sleeper released too early")
	case <-time.After(10 * time.Millisecond):
	}
	s.Advance(31 * time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper not released after deadline passed")
	}
}

func TestSimSleepZeroReturnsImmediately(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestSimManySleepersReleasedInAnyOrder(t *testing.T) {
	s := NewSim(epoch)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i+1) * time.Minute
		go func() {
			defer wg.Done()
			s.Sleep(d)
		}()
	}
	for i := 0; s.Sleepers() < n && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := s.Sleepers(); got != n {
		t.Fatalf("Sleepers = %d, want %d", got, n)
	}
	s.Advance(time.Duration(n+1) * time.Minute)
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatalf("not all sleepers released; %d still waiting", s.Sleepers())
	}
}

func TestSimSetReleasesSleepers(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(24 * time.Hour)
		close(done)
	}()
	for i := 0; s.Sleepers() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	s.Set(epoch.Add(25 * time.Hour))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Set did not release sleeper")
	}
}
