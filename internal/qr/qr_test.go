package qr

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// --- reference decoder (used to round-trip symbols in tests) ---

// decode reads a Code back to its payload, verifying the format BCH and
// every Reed–Solomon block on the way.
func decode(t *testing.T, c *Code) string {
	t.Helper()

	// 1. Format info (copy 1, around the top-left finder).
	var fbits uint32
	get := func(x, y int) bool { return c.At(x, y) }
	setBit := func(i int, v bool) {
		if v {
			fbits |= 1 << uint(i)
		}
	}
	for i := 0; i <= 5; i++ {
		setBit(i, get(i, 8))
	}
	setBit(6, get(7, 8))
	setBit(7, get(8, 8))
	setBit(8, get(8, 7))
	for i := 9; i <= 14; i++ {
		setBit(i, get(8, 14-i))
	}
	unmasked := fbits ^ 0x5412
	// BCH check: remainder of the full 15 bits by 0x537 must be zero.
	rem := unmasked
	for i := 14; i >= 10; i-- {
		if rem&(1<<uint(i)) != 0 {
			rem ^= 0x537 << uint(i-10)
		}
	}
	if rem != 0 {
		t.Fatalf("format info BCH check failed: %015b", unmasked)
	}
	mask := int(unmasked >> 10 & 7)
	levelBits := unmasked >> 13
	var level Level
	switch levelBits {
	case 1:
		level = L
	case 0:
		level = M
	default:
		t.Fatalf("unexpected level bits %b", levelBits)
	}
	if mask != c.Mask || level != c.Level {
		t.Fatalf("format info decodes to mask=%d level=%d, symbol says %d/%d",
			mask, level, c.Mask, c.Level)
	}

	// 2. Rebuild the reserved map and unmask the data region.
	scratch := newMatrix(c.Version)
	scratch.placeFunctionPatterns(c.Version)
	f := maskFuncs[mask]
	dark := make([][]bool, c.Size)
	for y := range dark {
		dark[y] = make([]bool, c.Size)
		for x := range dark[y] {
			dark[y][x] = c.At(x, y)
			if !scratch.reserved[y][x] && f(y, x) {
				dark[y][x] = !dark[y][x]
			}
		}
	}

	// 3. Zigzag read-out.
	var bits []bool
	upward := true
	for right := c.Size - 1; right >= 1; right -= 2 {
		if right == 6 {
			right = 5
		}
		for i := 0; i < c.Size; i++ {
			y := i
			if upward {
				y = c.Size - 1 - i
			}
			for _, x := range []int{right, right - 1} {
				if scratch.reserved[y][x] {
					continue
				}
				bits = append(bits, dark[y][x])
			}
		}
		upward = !upward
	}
	spec := blockTable[level][c.Version]
	totalCW := 0
	for _, g := range spec.groups {
		totalCW += g[0] * (g[1] + spec.ecPerBlock)
	}
	if len(bits) < totalCW*8 {
		t.Fatalf("read %d bits, need %d", len(bits), totalCW*8)
	}
	stream := make([]byte, totalCW)
	for i := 0; i < totalCW*8; i++ {
		if bits[i] {
			stream[i/8] |= 0x80 >> uint(i%8)
		}
	}

	// 4. De-interleave into blocks.
	type block struct{ data, ec []byte }
	var blocks []block
	for _, g := range spec.groups {
		for i := 0; i < g[0]; i++ {
			blocks = append(blocks, block{data: make([]byte, 0, g[1])})
		}
	}
	sizes := make([]int, 0, len(blocks))
	for _, g := range spec.groups {
		for i := 0; i < g[0]; i++ {
			sizes = append(sizes, g[1])
		}
	}
	maxData := 0
	for _, s := range sizes {
		if s > maxData {
			maxData = s
		}
	}
	pos := 0
	for i := 0; i < maxData; i++ {
		for b := range blocks {
			if i < sizes[b] {
				blocks[b].data = append(blocks[b].data, stream[pos])
				pos++
			}
		}
	}
	for i := 0; i < spec.ecPerBlock; i++ {
		for b := range blocks {
			blocks[b].ec = append(blocks[b].ec, stream[pos])
			pos++
		}
	}

	// 5. RS verification per block, then concatenate data.
	var data []byte
	for i, b := range blocks {
		cw := append(append([]byte(nil), b.data...), b.ec...)
		if !rsSyndromesZero(cw, spec.ecPerBlock) {
			t.Fatalf("block %d fails RS syndrome check", i)
		}
		data = append(data, b.data...)
	}

	// 6. Parse the byte-mode segment.
	br := bitReader{data: data}
	if m := br.read(4); m != 0b0100 {
		t.Fatalf("mode = %04b, want 0100", m)
	}
	countBits := 8
	if c.Version >= 10 {
		countBits = 16
	}
	n := br.read(countBits)
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(br.read(8))
	}
	return string(payload)
}

type bitReader struct {
	data []byte
	pos  int
}

func (r *bitReader) read(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		v <<= 1
		if r.data[r.pos/8]&(0x80>>uint(r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v
}

// --- tests ---

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := []string{
		"A",
		"hello world",
		"otpauth://totp/TACC:cproctor?issuer=TACC&secret=JBSWY3DPEHPK3PXPJBSWY3DP",
		strings.Repeat("x", 100),
		strings.Repeat("padding-test-", 16), // 208 bytes → higher version
	}
	for _, level := range []Level{L, M} {
		for _, p := range payloads {
			c, err := Encode(p, level)
			if err != nil {
				t.Fatalf("Encode(%d bytes, level %d): %v", len(p), level, err)
			}
			if got := decode(t, c); got != p {
				t.Fatalf("round trip (level %d, %d bytes): got %q", level, len(p), got)
			}
		}
	}
}

func TestVersionSelection(t *testing.T) {
	cases := []struct {
		n       int
		level   Level
		version int
	}{
		{10, L, 1}, // fits in 19-2 = 17 bytes
		{17, L, 1}, // exactly v1-L capacity for byte mode
		{18, L, 2}, // one over
		{14, M, 1}, // v1-M holds 16-2 = 14
		{15, M, 2},
		{100, L, 5},  // 108-2 = 106 ≥ 100
		{250, L, 10}, // needs v10 (v9-L holds 232-2=230)
	}
	for _, c := range cases {
		code, err := Encode(strings.Repeat("a", c.n), c.level)
		if err != nil {
			t.Fatalf("n=%d level=%d: %v", c.n, c.level, err)
		}
		if code.Version != c.version {
			t.Errorf("n=%d level=%d: version %d, want %d", c.n, c.level, code.Version, c.version)
		}
		if code.Size != 17+4*code.Version {
			t.Errorf("size = %d for version %d", code.Size, code.Version)
		}
	}
	// Too long for v10.
	if _, err := Encode(strings.Repeat("a", 600), L); err != ErrTooLong {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestFinderPatternsPresent(t *testing.T) {
	c, err := Encode("finder test", L)
	if err != nil {
		t.Fatal(err)
	}
	// Core of each finder must be dark, ring edges alternating as spec'd.
	for _, corner := range [][2]int{{0, 0}, {c.Size - 7, 0}, {0, c.Size - 7}} {
		x0, y0 := corner[0], corner[1]
		if !c.At(x0+3, y0+3) {
			t.Errorf("finder core at (%d,%d) not dark", x0+3, y0+3)
		}
		if !c.At(x0, y0) || !c.At(x0+6, y0+6) {
			t.Errorf("finder ring at (%d,%d) broken", x0, y0)
		}
		if c.At(x0+1, y0+1) || c.At(x0+5, y0+5) {
			t.Errorf("finder white ring at (%d,%d) broken", x0, y0)
		}
	}
	// Timing pattern alternates.
	for i := 8; i < c.Size-8; i++ {
		if c.At(i, 6) != (i%2 == 0) {
			t.Fatalf("horizontal timing wrong at %d", i)
		}
		if c.At(6, i) != (i%2 == 0) {
			t.Fatalf("vertical timing wrong at %d", i)
		}
	}
	// Dark module.
	if !c.At(8, c.Size-8) {
		t.Fatal("dark module missing")
	}
}

func TestFormatInfoKnownVector(t *testing.T) {
	// Published reference value: level M (00), mask 5 → 0x40CE after
	// masking (widely documented example from the thonky.com tables and
	// the spec's annex).
	if got := formatInfo(M, 5); got != 0x40CE {
		t.Fatalf("formatInfo(M,5) = %#x, want 0x40ce", got)
	}
	// Level L, mask 4 → 110011000101111 = 0x662F (same tables).
	if got := formatInfo(L, 4); got != 0x662F {
		t.Fatalf("formatInfo(L,4) = %#x, want 0x662f", got)
	}
	// Level L, mask 0 → 111011111000100 = 0x77C4.
	if got := formatInfo(L, 0); got != 0x77C4 {
		t.Fatalf("formatInfo(L,0) = %#x, want 0x77c4", got)
	}
}

func TestFormatInfoDistance(t *testing.T) {
	// The 32 valid format strings have pairwise Hamming distance ≥ 5.
	var all []uint32
	for _, lvl := range []Level{L, M} {
		for mask := 0; mask < 8; mask++ {
			all = append(all, formatInfo(lvl, mask))
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			d := popcount(all[i] ^ all[j])
			if d < 5 {
				t.Fatalf("format codes %d and %d only distance %d apart", i, j, d)
			}
		}
	}
}

func TestVersionInfoKnownVector(t *testing.T) {
	// Spec annex example: version 7 → 0x07C94.
	if got := versionInfo(7); got != 0x07C94 {
		t.Fatalf("versionInfo(7) = %#x, want 0x7c94", got)
	}
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestRSKnownProperty(t *testing.T) {
	// Any message's codeword must have all-zero syndromes, and flipping
	// any byte must break that.
	data := []byte("openmfa reed solomon self-check")
	ec := rsEncode(data, 16)
	cw := append(append([]byte(nil), data...), ec...)
	if !rsSyndromesZero(cw, 16) {
		t.Fatal("fresh codeword fails syndrome check")
	}
	cw[3] ^= 0x40
	if rsSyndromesZero(cw, 16) {
		t.Fatal("corrupted codeword passes syndrome check")
	}
}

func TestRSGeneratorKnownVector(t *testing.T) {
	// The degree-7 generator's coefficients (after the leading 1) are
	// α^87, α^229, α^146, α^149, α^238, α^102, α^21 (spec annex A).
	g := rsGenerator(7)
	want := []byte{1, gfExp[87], gfExp[229], gfExp[146], gfExp[149], gfExp[238], gfExp[102], gfExp[21]}
	if !bytes.Equal(g, want) {
		t.Fatalf("g7 = %v, want %v", g, want)
	}
}

func TestMaskChoiceMinimizesPenalty(t *testing.T) {
	c, err := Encode("penalty minimization check", L)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mask < 0 || c.Mask > 7 {
		t.Fatalf("mask = %d", c.Mask)
	}
}

func TestRenderShape(t *testing.T) {
	c, err := Encode("render", L)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != c.Size+8 {
		t.Fatalf("render has %d lines, want %d", len(lines), c.Size+8)
	}
	if !strings.Contains(out, "██") {
		t.Fatal("no dark modules rendered")
	}
	inv := c.RenderInverted()
	if !strings.HasPrefix(inv, "██") {
		t.Fatal("inverted render quiet zone missing")
	}
}

// Property: every encodable ASCII payload round-trips at both levels.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte, lvl bool) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		level := L
		if lvl {
			level = M
		}
		c, err := Encode(string(raw), level)
		if err != nil {
			return false
		}
		return decode(t, c) == string(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeOtpauthURI(b *testing.B) {
	uri := "otpauth://totp/TACC:cproctor?issuer=TACC&secret=JBSWY3DPEHPK3PXPJBSWY3DP"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(uri, L); err != nil {
			b.Fatal(err)
		}
	}
}
