package qr

// matrix assembly: function patterns, data placement, masking, and the
// BCH-protected format/version information.

type matrix struct {
	size     int
	dark     [][]bool
	reserved [][]bool // function patterns + format/version areas
}

func newMatrix(version int) *matrix {
	size := 17 + 4*version
	m := &matrix{size: size}
	m.dark = make([][]bool, size)
	m.reserved = make([][]bool, size)
	for i := range m.dark {
		m.dark[i] = make([]bool, size)
		m.reserved[i] = make([]bool, size)
	}
	return m
}

func (m *matrix) set(x, y int, dark bool) {
	m.dark[y][x] = dark
	m.reserved[y][x] = true
}

// placeFinder draws a 7×7 finder pattern with its separator at (x, y)
// top-left.
func (m *matrix) placeFinder(x, y int) {
	for dy := -1; dy <= 7; dy++ {
		for dx := -1; dx <= 7; dx++ {
			xx, yy := x+dx, y+dy
			if xx < 0 || yy < 0 || xx >= m.size || yy >= m.size {
				continue
			}
			inRing := dx >= 0 && dx <= 6 && dy >= 0 && dy <= 6 &&
				(dx == 0 || dx == 6 || dy == 0 || dy == 6)
			inCore := dx >= 2 && dx <= 4 && dy >= 2 && dy <= 4
			m.set(xx, yy, inRing || inCore)
		}
	}
}

func (m *matrix) placeAlignment(cx, cy int) {
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			dark := dx == -2 || dx == 2 || dy == -2 || dy == 2 || (dx == 0 && dy == 0)
			m.set(cx+dx, cy+dy, dark)
		}
	}
}

func (m *matrix) placeFunctionPatterns(version int) {
	m.placeFinder(0, 0)
	m.placeFinder(m.size-7, 0)
	m.placeFinder(0, m.size-7)

	// Timing patterns.
	for i := 8; i < m.size-8; i++ {
		m.set(i, 6, i%2 == 0)
		m.set(6, i, i%2 == 0)
	}

	// Alignment patterns (skip any overlapping a finder).
	for _, cy := range alignmentCenters[version] {
		for _, cx := range alignmentCenters[version] {
			if m.reserved[cy][cx] {
				continue
			}
			m.placeAlignment(cx, cy)
		}
	}

	// Dark module.
	m.set(8, m.size-8, true)

	// Reserve format-information areas (filled in later).
	for i := 0; i <= 8; i++ {
		if !m.reserved[8][i] {
			m.set(i, 8, false)
		}
		if !m.reserved[i][8] {
			m.set(8, i, false)
		}
	}
	for i := 0; i < 8; i++ {
		m.set(m.size-1-i, 8, false)
		if !m.reserved[m.size-1-i][8] {
			m.set(8, m.size-1-i, false)
		}
	}

	// Reserve version-information areas (v ≥ 7).
	if version >= 7 {
		for i := 0; i < 6; i++ {
			for j := 0; j < 3; j++ {
				m.set(i, m.size-11+j, false)
				m.set(m.size-11+j, i, false)
			}
		}
	}
}

// placeData writes the codeword bit stream into the zigzag pattern.
func (m *matrix) placeData(codewords []byte) {
	bitIdx := 0
	totalBits := len(codewords) * 8
	bitAt := func(i int) bool {
		return codewords[i/8]&(0x80>>uint(i%8)) != 0
	}

	upward := true
	for right := m.size - 1; right >= 1; right -= 2 {
		if right == 6 {
			right = 5 // skip the vertical timing column
		}
		for i := 0; i < m.size; i++ {
			y := i
			if upward {
				y = m.size - 1 - i
			}
			for _, x := range []int{right, right - 1} {
				if m.reserved[y][x] {
					continue
				}
				dark := false
				if bitIdx < totalBits {
					dark = bitAt(bitIdx)
				}
				// Remainder bits beyond the stream stay light.
				m.dark[y][x] = dark
				bitIdx++
			}
		}
		upward = !upward
	}
}

// maskFuncs are the eight mask conditions (dark modules are toggled where
// the condition holds). Arguments are (row y, column x) per the spec.
var maskFuncs = [8]func(y, x int) bool{
	func(y, x int) bool { return (y+x)%2 == 0 },
	func(y, x int) bool { return y%2 == 0 },
	func(y, x int) bool { return x%3 == 0 },
	func(y, x int) bool { return (y+x)%3 == 0 },
	func(y, x int) bool { return (y/2+x/3)%2 == 0 },
	func(y, x int) bool { return y*x%2+y*x%3 == 0 },
	func(y, x int) bool { return (y*x%2+y*x%3)%2 == 0 },
	func(y, x int) bool { return ((y+x)%2+y*x%3)%2 == 0 },
}

func (m *matrix) applyMask(mask int) {
	f := maskFuncs[mask]
	for y := 0; y < m.size; y++ {
		for x := 0; x < m.size; x++ {
			if !m.reserved[y][x] && f(y, x) {
				m.dark[y][x] = !m.dark[y][x]
			}
		}
	}
}

// penalty scores a masked symbol (ISO 18004 rules N1–N4).
func (m *matrix) penalty() int {
	n := m.size
	score := 0

	// N1: runs of ≥5 same-colour modules in a row/column.
	for axis := 0; axis < 2; axis++ {
		for a := 0; a < n; a++ {
			run := 1
			for b := 1; b < n; b++ {
				var cur, prev bool
				if axis == 0 {
					cur, prev = m.dark[a][b], m.dark[a][b-1]
				} else {
					cur, prev = m.dark[b][a], m.dark[b-1][a]
				}
				if cur == prev {
					run++
					if run == 5 {
						score += 3
					} else if run > 5 {
						score++
					}
				} else {
					run = 1
				}
			}
		}
	}

	// N2: 2×2 blocks of the same colour.
	for y := 0; y < n-1; y++ {
		for x := 0; x < n-1; x++ {
			c := m.dark[y][x]
			if m.dark[y][x+1] == c && m.dark[y+1][x] == c && m.dark[y+1][x+1] == c {
				score += 3
			}
		}
	}

	// N3: finder-like 1:1:3:1:1 patterns with 4-module light flank.
	pat1 := []bool{true, false, true, true, true, false, true, false, false, false, false}
	pat2 := []bool{false, false, false, false, true, false, true, true, true, false, true}
	match := func(get func(int) bool, start int, pat []bool) bool {
		for i, p := range pat {
			if get(start+i) != p {
				return false
			}
		}
		return true
	}
	for a := 0; a < n; a++ {
		row := func(i int) bool { return m.dark[a][i] }
		col := func(i int) bool { return m.dark[i][a] }
		for b := 0; b+11 <= n; b++ {
			if match(row, b, pat1) || match(row, b, pat2) {
				score += 40
			}
			if match(col, b, pat1) || match(col, b, pat2) {
				score += 40
			}
		}
	}

	// N4: dark-module proportion deviation from 50%.
	dark := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if m.dark[y][x] {
				dark++
			}
		}
	}
	pct := dark * 100 / (n * n)
	dev := pct - 50
	if dev < 0 {
		dev = -dev
	}
	score += dev / 5 * 10
	return score
}

// bch computes poly-division remainders for format/version information.
func bch(value uint32, poly uint32, polyBits, dataShift int) uint32 {
	v := value << uint(dataShift)
	for i := 31; i >= polyBits-1; i-- {
		if v&(1<<uint(i)) != 0 {
			v ^= poly << uint(i-(polyBits-1))
		}
	}
	return value<<uint(dataShift) | v
}

// formatInfo returns the masked 15-bit format string.
func formatInfo(level Level, mask int) uint32 {
	data := level.formatBits()<<3 | uint32(mask)
	// BCH(15,5) generator 0x537.
	full := bch(data, 0x537, 11, 10)
	return full ^ 0x5412
}

// versionInfo returns the 18-bit version string (v ≥ 7).
func versionInfo(version int) uint32 {
	// Golay(18,6) generator 0x1F25.
	return bch(uint32(version), 0x1F25, 13, 12)
}

// writeFormatInfo paints the 15 format bits into both reserved regions.
// Bit 14 is the most significant.
func (m *matrix) writeFormatInfo(bits uint32) {
	get := func(i int) bool { return bits&(1<<uint(i)) != 0 }
	// Around the top-left finder: bits 0..5 along the top row x=0..5,
	// bit 6 at (7,8), bit 7 at (8,8), bit 8 at (8,7), bits 9..14 down
	// the left column y=5..0 (per the spec's figure 25 layout).
	for i := 0; i <= 5; i++ {
		m.dark[8][i] = get(i)
	}
	m.dark[8][7] = get(6)
	m.dark[8][8] = get(7)
	m.dark[7][8] = get(8)
	for i := 9; i <= 14; i++ {
		m.dark[14-i][8] = get(i)
	}
	// Second copy: bits 0..6 down the right of the bottom-left finder
	// (y = size-1 .. size-7 at x=8), bits 7..14 along the bottom of the
	// top-right finder (x = size-8 .. size-1 at y=8).
	for i := 0; i <= 6; i++ {
		m.dark[m.size-1-i][8] = get(i)
	}
	for i := 7; i <= 14; i++ {
		m.dark[8][m.size-15+i] = get(i)
	}
}

func (m *matrix) writeVersionInfo(version int) {
	if version < 7 {
		return
	}
	bits := versionInfo(version)
	for i := 0; i < 18; i++ {
		bit := bits&(1<<uint(i)) != 0
		x := i / 3
		y := m.size - 11 + i%3
		m.dark[y][x] = bit // bottom-left block
		m.dark[x][y] = bit // top-right block (transposed)
	}
}

// assemble builds the final symbol, trying all masks and keeping the best.
func assemble(version int, level Level, codewords []byte) *Code {
	base := newMatrix(version)
	base.placeFunctionPatterns(version)
	base.placeData(codewords)

	bestMask, bestScore := 0, int(^uint(0)>>1)
	var bestDark [][]bool
	for mask := 0; mask < 8; mask++ {
		m := base.clone()
		m.applyMask(mask)
		m.writeFormatInfo(formatInfo(level, mask))
		m.writeVersionInfo(version)
		if s := m.penalty(); s < bestScore {
			bestScore, bestMask, bestDark = s, mask, m.dark
		}
	}
	return &Code{
		Version: version, Level: level, Mask: bestMask,
		Size: base.size, modules: bestDark,
	}
}

func (m *matrix) clone() *matrix {
	out := &matrix{size: m.size}
	out.dark = make([][]bool, m.size)
	out.reserved = make([][]bool, m.size)
	for i := range m.dark {
		out.dark[i] = append([]bool(nil), m.dark[i]...)
		out.reserved[i] = append([]bool(nil), m.reserved[i]...)
	}
	return out
}
