package qr

import "strings"

// Render draws the code as terminal text: two characters per module plus
// the mandatory 4-module quiet zone. Dark modules print as '█'-pairs so
// phone cameras can scan a white-background terminal.
func (c *Code) Render() string {
	const quiet = 4
	var sb strings.Builder
	line := strings.Repeat("  ", c.Size+2*quiet)
	for i := 0; i < quiet; i++ {
		sb.WriteString(line + "\n")
	}
	for y := 0; y < c.Size; y++ {
		sb.WriteString(strings.Repeat("  ", quiet))
		for x := 0; x < c.Size; x++ {
			if c.At(x, y) {
				sb.WriteString("██")
			} else {
				sb.WriteString("  ")
			}
		}
		sb.WriteString(strings.Repeat("  ", quiet))
		sb.WriteByte('\n')
	}
	for i := 0; i < quiet; i++ {
		sb.WriteString(line + "\n")
	}
	return sb.String()
}

// RenderInverted draws dark modules as spaces on a dark-background
// terminal (light text blocks form the quiet zone and light modules).
func (c *Code) RenderInverted() string {
	const quiet = 4
	var sb strings.Builder
	line := strings.Repeat("██", c.Size+2*quiet)
	for i := 0; i < quiet; i++ {
		sb.WriteString(line + "\n")
	}
	for y := 0; y < c.Size; y++ {
		sb.WriteString(strings.Repeat("██", quiet))
		for x := 0; x < c.Size; x++ {
			if c.At(x, y) {
				sb.WriteString("  ")
			} else {
				sb.WriteString("██")
			}
		}
		sb.WriteString(strings.Repeat("██", quiet))
		sb.WriteByte('\n')
	}
	for i := 0; i < quiet; i++ {
		sb.WriteString(line + "\n")
	}
	return sb.String()
}
