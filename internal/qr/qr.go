package qr

import (
	"errors"
	"fmt"
)

// Level is the error-correction level.
type Level int

// Supported levels. L tolerates ~7% damage, M ~15%.
const (
	L Level = iota
	M
)

// formatBits are the two-bit EC indicators from the spec (L=01, M=00).
func (l Level) formatBits() uint32 {
	switch l {
	case L:
		return 1
	default:
		return 0
	}
}

// blockSpec describes the RS structure for one (version, level).
type blockSpec struct {
	ecPerBlock int
	// groups: pairs of (blockCount, dataCodewordsPerBlock).
	groups [][2]int
}

// dataCapacity is the total data codewords.
func (b blockSpec) dataCapacity() int {
	n := 0
	for _, g := range b.groups {
		n += g[0] * g[1]
	}
	return n
}

// ISO/IEC 18004 table 9 (versions 1–10, levels L and M).
var blockTable = map[Level][11]blockSpec{
	L: {
		1:  {7, [][2]int{{1, 19}}},
		2:  {10, [][2]int{{1, 34}}},
		3:  {15, [][2]int{{1, 55}}},
		4:  {20, [][2]int{{1, 80}}},
		5:  {26, [][2]int{{1, 108}}},
		6:  {18, [][2]int{{2, 68}}},
		7:  {20, [][2]int{{2, 78}}},
		8:  {24, [][2]int{{2, 97}}},
		9:  {30, [][2]int{{2, 116}}},
		10: {18, [][2]int{{2, 68}, {2, 69}}},
	},
	M: {
		1:  {10, [][2]int{{1, 16}}},
		2:  {16, [][2]int{{1, 28}}},
		3:  {26, [][2]int{{1, 44}}},
		4:  {18, [][2]int{{2, 32}}},
		5:  {24, [][2]int{{2, 43}}},
		6:  {16, [][2]int{{4, 27}}},
		7:  {18, [][2]int{{4, 31}}},
		8:  {22, [][2]int{{2, 38}, {2, 39}}},
		9:  {22, [][2]int{{3, 36}, {2, 37}}},
		10: {26, [][2]int{{4, 43}, {1, 44}}},
	},
}

// alignmentCenters per version (2–10).
var alignmentCenters = map[int][]int{
	2: {6, 18}, 3: {6, 22}, 4: {6, 26}, 5: {6, 30},
	6: {6, 34}, 7: {6, 22, 38}, 8: {6, 24, 42},
	9: {6, 26, 46}, 10: {6, 28, 50},
}

// ErrTooLong is returned when the payload exceeds version 10 capacity.
var ErrTooLong = errors.New("qr: payload too long for version <= 10")

// bitBuffer accumulates the data bit stream.
type bitBuffer struct {
	bits []bool
}

func (b *bitBuffer) append(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		b.bits = append(b.bits, v>>uint(i)&1 == 1)
	}
}

func (b *bitBuffer) bytes() []byte {
	out := make([]byte, (len(b.bits)+7)/8)
	for i, bit := range b.bits {
		if bit {
			out[i/8] |= 0x80 >> uint(i%8)
		}
	}
	return out
}

// chooseVersion picks the smallest version whose capacity holds the
// byte-mode payload.
func chooseVersion(payloadLen int, level Level) (int, error) {
	for v := 1; v <= 10; v++ {
		spec := blockTable[level][v]
		countBits := 8
		if v >= 10 {
			countBits = 16
		}
		// mode(4) + count + payload bits must fit.
		need := 4 + countBits + 8*payloadLen
		if need <= 8*spec.dataCapacity() {
			return v, nil
		}
	}
	return 0, ErrTooLong
}

// buildCodewords produces the final interleaved data+EC codeword stream.
func buildCodewords(payload []byte, version int, level Level) []byte {
	spec := blockTable[level][version]
	capacity := spec.dataCapacity()

	var bb bitBuffer
	bb.append(0b0100, 4) // byte mode
	countBits := 8
	if version >= 10 {
		countBits = 16
	}
	bb.append(uint32(len(payload)), countBits)
	for _, c := range payload {
		bb.append(uint32(c), 8)
	}
	// Terminator: up to 4 zero bits.
	for i := 0; i < 4 && len(bb.bits) < capacity*8; i++ {
		bb.bits = append(bb.bits, false)
	}
	// Pad to a byte boundary.
	for len(bb.bits)%8 != 0 {
		bb.bits = append(bb.bits, false)
	}
	data := bb.bytes()
	// Pad codewords 0xEC / 0x11 alternating.
	for i := 0; len(data) < capacity; i++ {
		if i%2 == 0 {
			data = append(data, 0xEC)
		} else {
			data = append(data, 0x11)
		}
	}

	// Split into blocks and compute per-block EC.
	type block struct{ data, ec []byte }
	var blocks []block
	off := 0
	for _, g := range spec.groups {
		for i := 0; i < g[0]; i++ {
			d := data[off : off+g[1]]
			off += g[1]
			blocks = append(blocks, block{data: d, ec: rsEncode(d, spec.ecPerBlock)})
		}
	}

	// Interleave: data column-wise across blocks, then EC likewise.
	var out []byte
	maxData := 0
	for _, b := range blocks {
		if len(b.data) > maxData {
			maxData = len(b.data)
		}
	}
	for i := 0; i < maxData; i++ {
		for _, b := range blocks {
			if i < len(b.data) {
				out = append(out, b.data[i])
			}
		}
	}
	for i := 0; i < spec.ecPerBlock; i++ {
		for _, b := range blocks {
			out = append(out, b.ec[i])
		}
	}
	return out
}

// Code is a rendered QR symbol.
type Code struct {
	Version int
	Level   Level
	Mask    int
	Size    int
	// modules[y][x]: true = dark.
	modules [][]bool
}

// At reports whether the module at (x, y) is dark.
func (c *Code) At(x, y int) bool { return c.modules[y][x] }

// Encode builds a QR code for a byte-mode payload.
func Encode(payload string, level Level) (*Code, error) {
	if _, ok := blockTable[level]; !ok {
		return nil, fmt.Errorf("qr: unsupported level %d", int(level))
	}
	version, err := chooseVersion(len(payload), level)
	if err != nil {
		return nil, err
	}
	codewords := buildCodewords([]byte(payload), version, level)
	return assemble(version, level, codewords), nil
}
