// Package qr implements QR Code (model 2) generation for byte-mode
// payloads, versions 1–10, error-correction levels L and M — enough to
// carry any otpauth:// enrollment URI. The portal's soft-token pairing
// page and cmd/tokengen render the result as a terminal-scannable block
// matrix (§3.5: "the user is shown a QR code which contains the user's
// secret key").
//
// Everything is implemented from the ISO/IEC 18004 structure: GF(256)
// Reed–Solomon error correction, block interleaving, the eight mask
// patterns with penalty scoring, and BCH-protected format/version
// information.
package qr

// GF(256) arithmetic with the QR polynomial x^8+x^4+x^3+x^2+1 (0x11D).

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// rsGenerator returns the degree-n Reed–Solomon generator polynomial
// ∏(x - α^i), i = 0..n-1, highest-order coefficient first.
func rsGenerator(n int) []byte {
	g := []byte{1}
	for i := 0; i < n; i++ {
		next := make([]byte, len(g)+1)
		for j, c := range g {
			next[j] ^= gfMul(c, 1) // x * g
			next[j+1] ^= gfMul(c, gfExp[i])
		}
		g = next
	}
	return g
}

// rsEncode computes n error-correction codewords for data.
func rsEncode(data []byte, n int) []byte {
	gen := rsGenerator(n)
	rem := make([]byte, n)
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[n-1] = 0
		if factor != 0 {
			for i := 0; i < n; i++ {
				rem[i] ^= gfMul(gen[i+1], factor)
			}
		}
	}
	return rem
}

// rsSyndromesZero reports whether data||ec is a valid RS codeword: every
// syndrome S_i = C(α^i) must be zero. Tests use this as the algebraic
// proof that encoding is correct.
func rsSyndromesZero(codeword []byte, n int) bool {
	for i := 0; i < n; i++ {
		var s byte
		alpha := gfExp[i]
		for _, c := range codeword {
			s = gfMul(s, alpha) ^ c
		}
		if s != 0 {
			return false
		}
	}
	return true
}
