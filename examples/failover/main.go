// Failover: §3.2/§3.4 resiliency. The PAM token module spreads validation
// over a RADIUS farm round-robin; when a server dies mid-production,
// logins keep succeeding through the survivors.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"openmfa/internal/core"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

func main() {
	inf, err := core.New(core.Options{RadiusServers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()
	fmt.Println("RADIUS farm:", inf.RadiusAddrs())

	if _, err := inf.CreateUser("alice", "a@hpc.example", "pw", idm.ClassUser); err != nil {
		log.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		log.Fatal(err)
	}

	// Each login uses a code one 30-second step further ahead (well
	// inside the ±300 s drift window), so no two logins reuse a consumed
	// code and the demo does not have to wait out TOTP periods.
	step := 0
	login := func() (time.Duration, error) {
		step++
		drift := time.Duration(step) * inf.OTP.OTPOptions().Period
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			code, _ := otp.TOTP(enr.Secret, time.Now().Add(drift), inf.OTP.OTPOptions())
			return code, nil
		}
		start := time.Now()
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "alice", TTY: true, Responder: r})
		if err != nil {
			return 0, err
		}
		c.Close()
		return time.Since(start), nil
	}

	for i := 0; i < 2; i++ {
		d, err := login()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("login with 3 healthy servers: ok in %s\n", d.Round(time.Millisecond))
	}

	// Kill one server. The pool fails over: the first login that hits
	// the dead server pays one timeout, after which the cooldown keeps
	// traffic on the survivors.
	victim := inf.RadiusAddrs()[0]
	for _, srv := range inf.RadiusFarm() {
		if srv.Addr().String() == victim {
			srv.Close()
		}
	}
	fmt.Println("killed RADIUS server", victim)

	for i := 0; i < 3; i++ {
		d, err := login()
		if err != nil {
			log.Fatalf("login after server loss failed: %v", err)
		}
		fmt.Printf("login with 2/3 servers: ok in %s\n", d.Round(time.Millisecond))
	}
	fmt.Println("authentication service survived the server loss")
}
