// Risk assessment: the paper's §6 growth path ("geolocation services,
// dynamic risk assessment"), built out on top of the same stack. A user
// with a stable Austin login history is admitted normally; a login from a
// brand-new country forces the second factor even for exempt accounts;
// impossible travel is refused outright.
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"openmfa/internal/core"
	"openmfa/internal/geoip"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/pam"
	"openmfa/internal/risk"
	"openmfa/internal/sshd"
)

func main() {
	inf, err := core.New(core.Options{
		// alice is whitelisted — normally she would never see a token
		// prompt.
		ExemptionRules: "permit : alice : ALL : ALL",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()

	// Swap the standard Figure 1 stack for the risk-gated variant and
	// wire outcome feedback.
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	*inf.Stack = *pam.NewSSHDStackWithRisk(pam.SSHDStackConfig{
		AuthLog:    inf.AuthLog,
		IDM:        inf.IDM,
		Exemptions: inf.ACL,
		TokenCfg:   inf.Mode,
		Pairing:    pam.LocalPairing{Dir: inf.Dir},
		Radius:     inf.Pool,
	}, engine, func(user string, d risk.Decision) {
		fmt.Printf("  [risk alert] %s: %s (score %.2f) %v\n", user, d.Outcome, d.Score, d.ReasonStrings())
	})
	inf.SSHD.Risk = engine

	if _, err := inf.CreateUser("alice", "a@hpc.example", "pw", idm.ClassUser); err != nil {
		log.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		log.Fatal(err)
	}

	// Build a month of boring history: Austin, business hours.
	now := time.Now().UTC()
	austin := net.ParseIP("129.114.3.7")
	for i := 0; i < 30; i++ {
		engine.RecordSuccess("alice", austin, now.AddDate(0, 0, -30+i))
	}

	login := func(label string, drift int) error {
		r := &sshd.FuncResponder{}
		prompted := []string{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			prompted = append(prompted, strings.TrimSpace(prompt))
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			code, _ := otp.TOTP(enr.Secret, time.Now().Add(time.Duration(drift)*30*time.Second), inf.OTP.OTPOptions())
			return code, nil
		}
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "alice", TTY: true, Responder: r})
		if err != nil {
			fmt.Printf("%s: DENIED (%v)\n", label, err)
			return err
		}
		c.Close()
		fmt.Printf("%s: admitted, prompts=%v\n", label, prompted)
		return nil
	}

	// 1. Familiar pattern: exemption applies, password only.
	fmt.Println("— login from the usual Austin network —")
	login("usual place", 1)

	// Simulate the engine having just seen that Austin success (the sshd
	// feedback did it), then an attacker with the password shows up from
	// the other side of the planet within the hour: impossible travel.
	fmt.Println("— same credentials from China 30 minutes later —")
	// Reach the login node from a different (Chinese) address is not
	// possible over loopback, so consult the engine directly, the way a
	// border IDS would:
	a := engine.Assess("alice", net.ParseIP("159.226.40.1"), time.Now().UTC().Add(30*time.Minute))
	fmt.Printf("  assessment: %s (score %.2f) %v\n", a.Level, a.Score, a.Reasons)
	if a.Level != risk.Critical {
		log.Fatalf("expected critical, got %v", a.Level)
	}
	fmt.Println("  → the risk-gated PAM stack denies this attempt before the second factor")

	// 3. A legitimate trip: Germany, a week later. Elevated, not
	//    critical — the stack suppresses alice's exemption and demands
	//    the token code she can provide.
	fmt.Println("— legitimate travel to Germany a week later —")
	b := engine.Assess("alice", net.ParseIP("141.20.1.2"), time.Now().UTC().AddDate(0, 0, 7))
	fmt.Printf("  assessment: %s (score %.2f) %v\n", b.Level, b.Score, b.Reasons)
	fmt.Println("  → exemption suppressed; the token prompt stands between the password and entry")
}
