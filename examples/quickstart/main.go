// Quickstart: stand up the whole MFA infrastructure in-process, create an
// account, pair a soft token (the paper's smartphone app), and log in over
// the SSH-substitute protocol with password + token code.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"openmfa/internal/core"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

func main() {
	// 1. The full back end: otpd + RADIUS farm + directory + portal +
	//    login node, wired like the paper's §3 architecture.
	inf, err := core.New(core.Options{Banner: "** MFA protected system **"})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()
	fmt.Println(inf)

	// 2. An account and a soft-token pairing. The enrollment URI is the
	//    QR payload the portal would show.
	if _, err := inf.CreateUser("alice", "alice@hpc.example", "correct horse", idm.ClassUser); err != nil {
		log.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("QR payload:", enr.URI)

	// 3. The "smartphone": generates the current six-digit code.
	phone := func() string {
		code, err := otp.TOTP(enr.Secret, time.Now(), inf.OTP.OTPOptions())
		if err != nil {
			log.Fatal(err)
		}
		return code
	}

	// 4. Log in. The responder plays the human: password first (the
	//    first factor), then the token code when prompted.
	responder := &sshd.FuncResponder{}
	responder.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			fmt.Printf("  prompt: %q -> (password)\n", prompt)
			return "correct horse", nil
		}
		code := phone()
		fmt.Printf("  prompt: %q -> %s\n", prompt, code)
		return code, nil
	}
	client, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{
		User: "alice", TTY: true, Responder: responder,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("banner:", client.Banner)

	out, err := client.Exec("hostname")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hostname:", out)

	// 5. A second factor really is enforced: a fresh connection with the
	//    wrong code is denied.
	bad := &sshd.FuncResponder{}
	bad.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "correct horse", nil
		}
		return "000000", nil
	}
	if _, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "alice", Responder: bad}); err != nil {
		fmt.Println("wrong token code rejected:", err)
	}
}
