// Phased rollout: walk a small user base through the paper's four-tier
// opt-in policy live — "off" → "paired" → "countdown" → "full" — flipping
// the enforcement mode during production exactly as §3.4 describes, and
// watching how paired and unpaired users experience each tier.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"openmfa/internal/core"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/pam"
	"openmfa/internal/sshd"
)

func main() {
	inf, err := core.New(core.Options{Mode: pam.ModeOff})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()

	// Two users: early-adopter eve pairs immediately; laggard lou waits.
	for _, u := range []string{"eve", "lou"} {
		if _, err := inf.CreateUser(u, u+"@hpc.example", u+"-pass", idm.ClassUser); err != nil {
			log.Fatal(err)
		}
	}
	enr, err := inf.PairSoft("eve")
	if err != nil {
		log.Fatal(err)
	}

	try := func(user string) (prompts []string, err error) {
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			prompts = append(prompts, strings.TrimSpace(prompt))
			switch {
			case strings.Contains(prompt, "Password"):
				return user + "-pass", nil
			case strings.Contains(prompt, "Token"):
				code, _ := otp.TOTP(enr.Secret, time.Now(), inf.OTP.OTPOptions())
				return code, nil
			default:
				return "", nil // countdown acknowledgement
			}
		}
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: user, TTY: true, Responder: r})
		if err == nil {
			c.Close()
		}
		return prompts, err
	}

	show := func(tier string) {
		fmt.Printf("\n=== mode: %s ===\n", tier)
		for _, u := range []string{"eve", "lou"} {
			prompts, err := try(u)
			status := "admitted"
			if err != nil {
				status = "DENIED"
			}
			fmt.Printf("%-4s %-8s prompts:\n", u, status)
			for _, p := range prompts {
				fmt.Printf("       - %s\n", firstLine(p))
			}
		}
	}

	// Tier 1: off — single factor for everyone.
	show("off")

	// Tier 2: paired — opt-in: eve (paired) is challenged, lou is not.
	inf.Mode.SetMode(pam.ModePaired)
	show("paired")

	// Tier 3: countdown — lou now gets the deadline notice and must
	// acknowledge it; eve's flow is unchanged.
	inf.Mode.Set(pam.TokenConfig{
		Mode:     pam.ModeCountdown,
		Deadline: time.Now().UTC().AddDate(0, 0, 14),
		InfoURL:  inf.PortalURL() + "/pair",
	})
	show("countdown")

	// Tier 4: full — MFA mandatory; lou is locked out until pairing.
	inf.Mode.SetMode(pam.ModeFull)
	show("full")

	// lou finally pairs (via SMS) and regains access.
	_, phone, err := inf.PairSMS("lou", "5125550100")
	if err != nil {
		log.Fatal(err)
	}
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "lou-pass", nil
		}
		// Read the code off the virtual phone (instant carrier here).
		for i := 0; i < 100; i++ {
			if m, ok := phone.Latest(); ok {
				f := strings.Fields(m.Body)
				return f[len(f)-1], nil
			}
			time.Sleep(50 * time.Millisecond)
		}
		return "", fmt.Errorf("sms never arrived")
	}
	if _, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "lou", TTY: true, Responder: r}); err != nil {
		log.Fatalf("lou still denied after pairing: %v", err)
	}
	fmt.Println("\nlou paired an SMS token and is admitted under full enforcement")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
