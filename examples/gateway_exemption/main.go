// Gateway exemption: the paper's flagship flexibility feature (§3.4). A
// science-gateway account with public-key authentication and a whitelist
// entry keeps running automated, non-interactive transfers with zero
// prompts, while ordinary researchers get the full MFA challenge. A
// temporary variance shows date-based expiry.
package main

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"strings"
	"time"

	"openmfa/internal/core"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

func main() {
	today := time.Now().UTC().Format("2006-01-02")
	yesterday := time.Now().UTC().AddDate(0, 0, -1).Format("2006-01-02")

	inf, err := core.New(core.Options{
		// The exemption configuration, in the paper's extended
		// pam_access syntax: a permanent gateway whitelist plus a
		// temporary variance that expires tonight and one that has
		// already expired.
		ExemptionRules: "permit : gateway1 : ALL : ALL\n" +
			"permit : slowpoke : ALL : " + today + "\n" +
			"permit : expired : ALL : " + yesterday + "\n",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()

	// The gateway: pubkey auth, exemption, no MFA device at all.
	if _, err := inf.CreateUser("gateway1", "gw@hpc.example", "gw-pass", idm.ClassGateway); err != nil {
		log.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := inf.IDM.AddPublicKey("gateway1", pub); err != nil {
		log.Fatal(err)
	}

	// Automated, non-interactive batch: no Responder means any prompt
	// would abort — exactly what a cron job needs.
	for i := 1; i <= 3; i++ {
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{
			User: "gateway1", Key: priv, Shell: "/usr/bin/scp",
		})
		if err != nil {
			log.Fatalf("automated transfer %d blocked: %v", i, err)
		}
		out, _ := c.Exec("scp results.tar archive:")
		fmt.Printf("gateway transfer %d: %s (no prompts)\n", i, out)
		c.Close()
	}

	// The researcher: full MFA.
	if _, err := inf.CreateUser("bob", "bob@hpc.example", "bob-pass", idm.ClassUser); err != nil {
		log.Fatal(err)
	}
	enr, err := inf.PairSoft("bob")
	if err != nil {
		log.Fatal(err)
	}
	r := &sshd.FuncResponder{}
	prompts := 0
	r.Fn = func(echo bool, prompt string) (string, error) {
		prompts++
		if strings.Contains(prompt, "Password") {
			return "bob-pass", nil
		}
		code, _ := otp.TOTP(enr.Secret, time.Now(), inf.OTP.OTPOptions())
		return code, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "bob", TTY: true, Responder: r})
	if err != nil {
		log.Fatal(err)
	}
	c.Close()
	fmt.Printf("researcher bob: %d prompts (password + token code)\n", prompts)

	// Temporary variances: slowpoke's is valid through today, expired's
	// lapsed yesterday and the full stack now denies the account (it has
	// no MFA device).
	for _, user := range []string{"slowpoke", "expired"} {
		if _, err := inf.CreateUser(user, user+"@hpc.example", "pw", idm.ClassUser); err != nil {
			log.Fatal(err)
		}
		pwOnly := &sshd.FuncResponder{}
		pwOnly.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			return "000000", nil // no device: cannot answer the token prompt
		}
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: user, Responder: pwOnly})
		if err != nil {
			fmt.Printf("%s: denied (%v)\n", user, err)
		} else {
			fmt.Printf("%s: admitted under temporary variance\n", user)
			c.Close()
		}
	}
}
