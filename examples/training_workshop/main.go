// Training workshop: the paper's fourth, non-public token type (§3.3).
// Before a tutorial, staff assign random static six-digit codes to the
// training accounts so participants experience the MFA login flow without
// owning a device; afterwards the codes are regenerated, invalidating
// anything written on whiteboards.
package main

import (
	"fmt"
	"log"
	"strings"

	"openmfa/internal/core"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/idm"
	"openmfa/internal/sshd"
)

func main() {
	inf, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer inf.Close()

	// Provision a block of training accounts with one static code each.
	type account struct{ user, code string }
	var roster []account
	for i := 1; i <= 5; i++ {
		user := fmt.Sprintf("train%02d", i)
		if _, err := inf.CreateUser(user, user+"@hpc.example", "train-pass", idm.ClassTraining); err != nil {
			log.Fatal(err)
		}
		code := fmt.Sprintf("%06d", int(cryptoutil.RandomBytes(4)[0])*3937%1000000)
		if err := inf.PairTraining(user, code); err != nil {
			log.Fatal(err)
		}
		roster = append(roster, account{user, code})
	}
	fmt.Println("workshop roster (handed out on paper):")
	for _, a := range roster {
		fmt.Printf("  %s / train-pass / token %s\n", a.user, a.code)
	}

	login := func(user, code string) error {
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "train-pass", nil
			}
			return code, nil
		}
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: user, TTY: true, Responder: r})
		if err != nil {
			return err
		}
		return c.Close()
	}

	// Every participant walks through the full MFA flow — static codes
	// are reusable within the session, unlike TOTP.
	for _, a := range roster {
		for attempt := 0; attempt < 2; attempt++ {
			if err := login(a.user, a.code); err != nil {
				log.Fatalf("%s attempt %d: %v", a.user, attempt, err)
			}
		}
		fmt.Printf("%s: logged in twice with the same static code\n", a.user)
	}

	// Session over: regenerate. Old codes die instantly.
	old := roster[0]
	if err := inf.OTP.SetStaticToken(old.user, "999000"); err != nil {
		log.Fatal(err)
	}
	if err := login(old.user, old.code); err != nil {
		fmt.Printf("after regeneration, old code for %s is dead: %v\n", old.user, err)
	}
	if err := login(old.user, "999000"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new code for %s works\n", old.user)
}
