// Command smsd runs the standalone Twilio-substitute SMS gateway with its
// REST API, a virtual phone network, and cost accounting.
//
// Example:
//
//	smsd -http 127.0.0.1:8089 -phones 5125551234,5125555678
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/sms"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8089", "REST API listen address")
		phones   = flag.String("phones", "", "comma-separated virtual phone numbers to register")
		seed     = flag.Int64("seed", 1, "carrier randomness seed")
	)
	flag.Parse()

	g := sms.NewGateway(clock.Real{}, sms.DefaultCarrier(), *seed)
	var registered []*sms.Phone
	for _, n := range strings.Split(*phones, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		p, err := g.Register(n)
		if err != nil {
			log.Fatalf("smsd: %v", err)
		}
		registered = append(registered, p)
		go watch(p)
	}

	fmt.Printf("smsd: account SID %s, auth token %s\n", g.AccountSID, g.AuthToken)
	fmt.Printf("smsd: POST http://%s/2010-04-01/Accounts/%s/Messages.json (Basic auth)\n",
		*httpAddr, g.AccountSID)
	go func() {
		if err := http.ListenAndServe(*httpAddr, &sms.API{Gateway: g}); err != nil {
			log.Fatalf("smsd: %v", err)
		}
	}()

	// Bill monthly like Twilio's flat fee.
	go func() {
		for range time.Tick(30 * 24 * time.Hour) {
			g.BillMonth()
		}
	}()
	g.BillMonth() // first month starts now

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	fmt.Println("\nsmsd:", g.Cost())
}

func watch(p *sms.Phone) {
	for {
		m := <-p.Wait()
		fmt.Printf("smsd: [%s] %s (attempts=%d, latency=%s)\n",
			p.Number, m.Body, m.Attempts, m.DeliveredAt.Sub(m.QueuedAt).Round(time.Millisecond))
	}
}
