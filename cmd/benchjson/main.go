// Command benchjson turns `go test -bench -benchmem` output into the
// repo's recorded perf trajectory (BENCH_<pr>.json).
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -pr 6 -out BENCH_6.json \
//	    -require Encode,Decode,CheckSuccess
//
// The -require list makes the pipeline fail loudly when an expected
// benchmark vanishes (renamed, skipped, or its package failed to build)
// instead of silently recording a thinner trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"openmfa/internal/benchfmt"
)

// document is the stable on-disk schema for BENCH_*.json.
type document struct {
	Schema int    `json:"schema"`
	PR     int    `json:"pr,omitempty"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []benchfmt.Result `json:"benchmarks"`
}

func main() {
	var (
		pr      = flag.Int("pr", 0, "PR number recorded in the document")
		out     = flag.String("out", "", "output path (default stdout)")
		require = flag.String("require", "", "comma-separated benchmark names that must be present")
	)
	flag.Parse()

	set, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(set.Results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !present(set, name) {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("benchjson: required benchmarks missing: %s",
				strings.Join(missing, ", ")))
		}
	}

	doc := document{
		Schema: 1, PR: *pr,
		Date: time.Now().UTC().Format("2006-01-02"),
		Go:   runtime.Version(),
		GoOS: set.GoOS, GoArch: set.GoArch, CPU: set.CPU,
		Benchmarks: set.Results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// present matches exact names and sub-benchmark prefixes, so
// -require ApplyParallel is satisfied by ApplyParallel/shards=4.
func present(s *benchfmt.Set, name string) bool {
	for _, r := range s.Results {
		if r.Name == name || strings.HasPrefix(r.Name, name+"/") {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
