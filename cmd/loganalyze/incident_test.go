package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs/prof"
	"openmfa/internal/seglog"
)

// newIncidentDir persists one manual incident bundle and returns its
// directory and ID.
func newIncidentDir(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	sim := clock.NewSim(time.Date(2016, 10, 4, 3, 12, 0, 0, time.UTC))
	e, err := prof.New(prof.Config{
		Dir: dir, Clock: sim, CPUDuration: time.Millisecond, Retention: 2,
	})
	if err != nil {
		t.Fatalf("prof.New: %v", err)
	}
	defer e.Stop()
	e.CaptureOnce()
	inc, err := e.Fire("manual", "loganalyze smoke")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	return dir, inc.ID
}

func TestSniffSegments(t *testing.T) {
	dir, _ := newIncidentDir(t)
	if got := sniffSegments(dir, true); got != "incident" {
		t.Errorf("incident dir sniffed as %q", got)
	}
	seg := filepath.Join(dir, seglog.SegName(prof.SegPrefix, 1))
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("expected segment: %v", err)
	}
	if got := sniffSegments(seg, false); got != "incident" {
		t.Errorf("incident segment sniffed as %q", got)
	}
	if got := sniffSegments(filepath.Join(dir, "flightrec-000001.seg"), false); got != "flightrec" {
		t.Errorf("flightrec segment sniffed as %q", got)
	}
	if got := sniffSegments(t.TempDir(), true); got != "flightrec" {
		t.Errorf("empty dir sniffed as %q, want flightrec default", got)
	}
}

func TestAnalyzeIncidents(t *testing.T) {
	dir, id := newIncidentDir(t)
	if err := analyzeIncidents(dir, "", "", "", 5); err != nil {
		t.Errorf("summary: %v", err)
	}
	if err := analyzeIncidents(dir, id, "", "", 5); err != nil {
		t.Errorf("detail: %v", err)
	}
	out := filepath.Join(t.TempDir(), "cpu.pb.gz")
	if err := analyzeIncidents(dir, id, "cpu", out, 5); err != nil {
		t.Fatalf("extract: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read extracted profile: %v", err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("extracted CPU profile is not gzip (got % x...)", b[:min(len(b), 4)])
	}

	if err := analyzeIncidents(dir, "inc-999999", "", "", 5); err == nil {
		t.Error("unknown incident: want error")
	}
	if err := analyzeIncidents(dir, id, "no-such-kind", "", 5); err == nil ||
		!strings.Contains(err.Error(), "no-such-kind") {
		t.Errorf("unknown profile kind: got %v", err)
	}
	if err := analyzeIncidents(dir, "", "cpu", "", 5); err == nil {
		t.Error("-profile without -incident: want error")
	}
}
