// Command loganalyze runs the §4.1 information-gathering pipeline over an
// auth log file: rank users by login events, classify TTY vs scripted
// entries, apply the staff-activity threshold, and list the accounts to
// contact about their automated workflows.
//
// It reads the classic authlog line format, the eventstream JSONL dump
// produced by `rollout -events-out` (one JSON event per line), or a flight
// recorder segment directory (`-format flightrec`), picking the format
// automatically by default.
//
// In flightrec mode it summarises the persisted trace bundles (newest
// first, with keep-reason tallies) and `-trace <id>` prints one bundle's
// full span tree, events, and log lines.
//
// Example:
//
//	loganalyze -log /var/log/openmfa/secure.log \
//	           -staff cproctor,storm -known-gateways gateway1,tg803
//	loganalyze -log /var/lib/otpd/flightrec -format flightrec -trace 4fca21...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/eventstream"
	"openmfa/internal/flightrec"
	"openmfa/internal/loganalysis"
)

func main() {
	var (
		logPath  = flag.String("log", "", "auth log file (required)")
		staff    = flag.String("staff", "", "comma-separated staff accounts (threshold reference)")
		gateways = flag.String("known-gateways", "", "comma-separated known gateway/community accounts to filter")
		fromStr  = flag.String("from", "", "window start YYYY-MM-DD (default: all)")
		toStr    = flag.String("to", "", "window end YYYY-MM-DD (default: all)")
		topN     = flag.Int("top", 20, "ranking rows to print")
		format   = flag.String("format", "auto", "log format: authlog, jsonl (eventstream dump), flightrec (segment dir), or auto")
		traceID  = flag.String("trace", "", "flightrec only: print this trace's bundle (span tree, events, logs)")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("loganalyze: -log required")
	}

	if *format == "auto" {
		if fi, err := os.Stat(*logPath); err == nil && (fi.IsDir() || strings.HasSuffix(*logPath, ".seg")) {
			*format = "flightrec"
		}
	}
	if *format == "flightrec" {
		if err := analyzeFlightrec(*logPath, *traceID, *topN); err != nil {
			log.Fatalf("loganalyze: %v", err)
		}
		return
	}

	events, bad, err := readEvents(*logPath, *format)
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	if bad > 0 {
		log.Printf("loganalyze: skipped %d malformed lines", bad)
	}

	from := time.Time{}
	to := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	if *fromStr != "" {
		if from, err = time.Parse("2006-01-02", *fromStr); err != nil {
			log.Fatalf("loganalyze: bad -from: %v", err)
		}
	}
	if *toStr != "" {
		if to, err = time.Parse("2006-01-02", *toStr); err != nil {
			log.Fatalf("loganalyze: bad -to: %v", err)
		}
		to = to.AddDate(0, 0, 1)
	}

	report := loganalysis.Analyze(events, from, to)
	fmt.Print(report.Summary(*topN))

	staffSet := toSet(*staff)
	exclude := toSet(*gateways)
	for s := range staffSet {
		exclude[s] = true
	}
	threshold := report.StaffThreshold(staffSet)
	fmt.Printf("\nstaff threshold: %d logins\n", threshold)
	targets := report.Targets(threshold, exclude)
	fmt.Printf("accounts to contact (> threshold, excluding staff/known gateways): %d\n", len(targets))
	for _, u := range targets {
		fmt.Printf("  %-16s %6d logins, %3.0f%% non-TTY, shells %v\n",
			u.User, u.Logins, 100*u.NonTTYFraction(), shellList(u.Shells))
	}
	fmt.Printf("these accounts produce %.0f%% of all login events\n",
		100*report.AutomationShare(targets))
}

// analyzeFlightrec summarises a flight recorder segment directory, or
// renders one bundle in full when trace is set.
func analyzeFlightrec(path, trace string, topN int) error {
	bundles, err := flightrec.ReadDir(path)
	if err != nil {
		return err
	}
	if trace != "" {
		for i := range bundles {
			if bundles[i].Trace == trace {
				flightrec.RenderTree(os.Stdout, &bundles[i])
				return nil
			}
		}
		return fmt.Errorf("no bundle for trace %s (%d bundles read)", trace, len(bundles))
	}
	reasons := map[string]int{}
	for _, b := range bundles {
		reasons[b.Reason]++
	}
	fmt.Printf("flight recorder: %d bundles\n", len(bundles))
	for _, r := range []string{"failed", "slow", "lockout", "alert", "sampled"} {
		if reasons[r] > 0 {
			fmt.Printf("  %-8s %d\n", r, reasons[r])
		}
	}
	fmt.Printf("\nnewest %d:\n", topN)
	for i := len(bundles) - 1; i >= 0 && i >= len(bundles)-topN; i-- {
		b := bundles[i]
		fmt.Printf("  %s %-12s %-8s %-8s %8s  %s\n",
			b.Time.UTC().Format("2006-01-02T15:04:05Z"), b.User, b.Result, b.Reason,
			b.Duration.Round(time.Millisecond), b.Trace)
	}
	return nil
}

// readEvents loads the log in the requested format. "auto" sniffs the
// first non-empty line: eventstream JSONL lines are JSON objects, so a
// leading '{' selects the JSONL reader.
func readEvents(path, format string) ([]authlog.Event, int, error) {
	if format == "auto" {
		sniffed, err := sniffFormat(path)
		if err != nil {
			return nil, 0, err
		}
		format = sniffed
	}
	switch format {
	case "authlog":
		return authlog.ReadFile(path)
	case "jsonl":
		stream, bad, err := eventstream.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		var events []authlog.Event
		for _, e := range stream {
			if ae, ok := eventstream.ToAuthlog(e); ok {
				events = append(events, ae)
			}
		}
		return events, bad, nil
	default:
		return nil, 0, fmt.Errorf("unknown -format %q (want authlog, jsonl, or auto)", format)
	}
}

func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			return "jsonl", nil
		}
		return "authlog", nil
	}
	return "authlog", sc.Err()
}

func toSet(csv string) map[string]bool {
	out := map[string]bool{}
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out[s] = true
		}
	}
	return out
}

func shellList(m map[string]int) []string {
	var out []string
	for s := range m {
		out = append(out, s)
	}
	return out
}
