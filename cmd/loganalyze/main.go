// Command loganalyze runs the §4.1 information-gathering pipeline over an
// auth log file: rank users by login events, classify TTY vs scripted
// entries, apply the staff-activity threshold, and list the accounts to
// contact about their automated workflows.
//
// It reads either the classic authlog line format or the eventstream JSONL
// dump produced by `rollout -events-out` (one JSON event per line), picking
// the format automatically by default.
//
// Example:
//
//	loganalyze -log /var/log/openmfa/secure.log \
//	           -staff cproctor,storm -known-gateways gateway1,tg803
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/eventstream"
	"openmfa/internal/loganalysis"
)

func main() {
	var (
		logPath  = flag.String("log", "", "auth log file (required)")
		staff    = flag.String("staff", "", "comma-separated staff accounts (threshold reference)")
		gateways = flag.String("known-gateways", "", "comma-separated known gateway/community accounts to filter")
		fromStr  = flag.String("from", "", "window start YYYY-MM-DD (default: all)")
		toStr    = flag.String("to", "", "window end YYYY-MM-DD (default: all)")
		topN     = flag.Int("top", 20, "ranking rows to print")
		format   = flag.String("format", "auto", "log format: authlog, jsonl (eventstream dump), or auto")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("loganalyze: -log required")
	}

	events, bad, err := readEvents(*logPath, *format)
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	if bad > 0 {
		log.Printf("loganalyze: skipped %d malformed lines", bad)
	}

	from := time.Time{}
	to := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	if *fromStr != "" {
		if from, err = time.Parse("2006-01-02", *fromStr); err != nil {
			log.Fatalf("loganalyze: bad -from: %v", err)
		}
	}
	if *toStr != "" {
		if to, err = time.Parse("2006-01-02", *toStr); err != nil {
			log.Fatalf("loganalyze: bad -to: %v", err)
		}
		to = to.AddDate(0, 0, 1)
	}

	report := loganalysis.Analyze(events, from, to)
	fmt.Print(report.Summary(*topN))

	staffSet := toSet(*staff)
	exclude := toSet(*gateways)
	for s := range staffSet {
		exclude[s] = true
	}
	threshold := report.StaffThreshold(staffSet)
	fmt.Printf("\nstaff threshold: %d logins\n", threshold)
	targets := report.Targets(threshold, exclude)
	fmt.Printf("accounts to contact (> threshold, excluding staff/known gateways): %d\n", len(targets))
	for _, u := range targets {
		fmt.Printf("  %-16s %6d logins, %3.0f%% non-TTY, shells %v\n",
			u.User, u.Logins, 100*u.NonTTYFraction(), shellList(u.Shells))
	}
	fmt.Printf("these accounts produce %.0f%% of all login events\n",
		100*report.AutomationShare(targets))
}

// readEvents loads the log in the requested format. "auto" sniffs the
// first non-empty line: eventstream JSONL lines are JSON objects, so a
// leading '{' selects the JSONL reader.
func readEvents(path, format string) ([]authlog.Event, int, error) {
	if format == "auto" {
		sniffed, err := sniffFormat(path)
		if err != nil {
			return nil, 0, err
		}
		format = sniffed
	}
	switch format {
	case "authlog":
		return authlog.ReadFile(path)
	case "jsonl":
		stream, bad, err := eventstream.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		var events []authlog.Event
		for _, e := range stream {
			if ae, ok := eventstream.ToAuthlog(e); ok {
				events = append(events, ae)
			}
		}
		return events, bad, nil
	default:
		return nil, 0, fmt.Errorf("unknown -format %q (want authlog, jsonl, or auto)", format)
	}
}

func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			return "jsonl", nil
		}
		return "authlog", nil
	}
	return "authlog", sc.Err()
}

func toSet(csv string) map[string]bool {
	out := map[string]bool{}
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out[s] = true
		}
	}
	return out
}

func shellList(m map[string]int) []string {
	var out []string
	for s := range m {
		out = append(out, s)
	}
	return out
}
