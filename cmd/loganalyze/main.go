// Command loganalyze runs the §4.1 information-gathering pipeline over an
// auth log file: rank users by login events, classify TTY vs scripted
// entries, apply the staff-activity threshold, and list the accounts to
// contact about their automated workflows.
//
// It reads the classic authlog line format, the eventstream JSONL dump
// produced by `rollout -events-out` (one JSON event per line), a flight
// recorder segment directory (`-format flightrec`), or an incident
// bundle directory written by the continuous profiler (`-format
// incident`), picking the format automatically by default.
//
// In flightrec mode it summarises the persisted trace bundles (newest
// first, with keep-reason tallies) and `-trace <id>` prints one bundle's
// full span tree, events, and log lines.
//
// In incident mode it summarises the diagnostic bundles (newest first,
// with trigger tallies), `-incident <id>` prints one bundle in full, and
// `-incident <id> -profile cpu -out f.pb.gz` extracts a raw pprof
// profile for `go tool pprof`. Both segment readers are strictly
// read-only, so they are safe to point at a live daemon's directory.
//
// Example:
//
//	loganalyze -log /var/log/openmfa/secure.log \
//	           -staff cproctor,storm -known-gateways gateway1,tg803
//	loganalyze -log /var/lib/otpd/flightrec -format flightrec -trace 4fca21...
//	loganalyze -log /var/lib/otpd/prof -format incident -incident inc-000001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/eventstream"
	"openmfa/internal/flightrec"
	"openmfa/internal/loganalysis"
	"openmfa/internal/obs/prof"
	"openmfa/internal/seglog"
)

func main() {
	var (
		logPath  = flag.String("log", "", "auth log file (required)")
		staff    = flag.String("staff", "", "comma-separated staff accounts (threshold reference)")
		gateways = flag.String("known-gateways", "", "comma-separated known gateway/community accounts to filter")
		fromStr  = flag.String("from", "", "window start YYYY-MM-DD (default: all)")
		toStr    = flag.String("to", "", "window end YYYY-MM-DD (default: all)")
		topN     = flag.Int("top", 20, "ranking rows to print")
		format   = flag.String("format", "auto", "log format: authlog, jsonl (eventstream dump), flightrec (segment dir), incident (prof bundle dir), or auto")
		traceID  = flag.String("trace", "", "flightrec only: print this trace's bundle (span tree, events, logs)")
		incID    = flag.String("incident", "", "incident only: print this incident bundle in full")
		profKind = flag.String("profile", "", "incident only: extract this pprof profile (cpu, heap, goroutine, mutex, block) from the -incident bundle's newest capture")
		outPath  = flag.String("out", "", "incident only: file for the extracted -profile (default <id>-<kind>.pb.gz)")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("loganalyze: -log required")
	}

	if *format == "auto" {
		if fi, err := os.Stat(*logPath); err == nil && (fi.IsDir() || strings.HasSuffix(*logPath, ".seg")) {
			*format = sniffSegments(*logPath, fi.IsDir())
		}
	}
	if *format == "flightrec" {
		if err := analyzeFlightrec(*logPath, *traceID, *topN); err != nil {
			log.Fatalf("loganalyze: %v", err)
		}
		return
	}
	if *format == "incident" {
		if err := analyzeIncidents(*logPath, *incID, *profKind, *outPath, *topN); err != nil {
			log.Fatalf("loganalyze: %v", err)
		}
		return
	}

	events, bad, err := readEvents(*logPath, *format)
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	if bad > 0 {
		log.Printf("loganalyze: skipped %d malformed lines", bad)
	}

	from := time.Time{}
	to := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	if *fromStr != "" {
		if from, err = time.Parse("2006-01-02", *fromStr); err != nil {
			log.Fatalf("loganalyze: bad -from: %v", err)
		}
	}
	if *toStr != "" {
		if to, err = time.Parse("2006-01-02", *toStr); err != nil {
			log.Fatalf("loganalyze: bad -to: %v", err)
		}
		to = to.AddDate(0, 0, 1)
	}

	report := loganalysis.Analyze(events, from, to)
	fmt.Print(report.Summary(*topN))

	staffSet := toSet(*staff)
	exclude := toSet(*gateways)
	for s := range staffSet {
		exclude[s] = true
	}
	threshold := report.StaffThreshold(staffSet)
	fmt.Printf("\nstaff threshold: %d logins\n", threshold)
	targets := report.Targets(threshold, exclude)
	fmt.Printf("accounts to contact (> threshold, excluding staff/known gateways): %d\n", len(targets))
	for _, u := range targets {
		fmt.Printf("  %-16s %6d logins, %3.0f%% non-TTY, shells %v\n",
			u.User, u.Logins, 100*u.NonTTYFraction(), shellList(u.Shells))
	}
	fmt.Printf("these accounts produce %.0f%% of all login events\n",
		100*report.AutomationShare(targets))
}

// analyzeFlightrec summarises a flight recorder segment directory, or
// renders one bundle in full when trace is set.
func analyzeFlightrec(path, trace string, topN int) error {
	bundles, err := flightrec.ReadDir(path)
	if err != nil {
		return err
	}
	if trace != "" {
		for i := range bundles {
			if bundles[i].Trace == trace {
				flightrec.RenderTree(os.Stdout, &bundles[i])
				return nil
			}
		}
		return fmt.Errorf("no bundle for trace %s (%d bundles read)", trace, len(bundles))
	}
	reasons := map[string]int{}
	for _, b := range bundles {
		reasons[b.Reason]++
	}
	fmt.Printf("flight recorder: %d bundles\n", len(bundles))
	for _, r := range []string{"failed", "slow", "lockout", "alert", "sampled"} {
		if reasons[r] > 0 {
			fmt.Printf("  %-8s %d\n", r, reasons[r])
		}
	}
	fmt.Printf("\nnewest %d:\n", topN)
	for i := len(bundles) - 1; i >= 0 && i >= len(bundles)-topN; i-- {
		b := bundles[i]
		fmt.Printf("  %s %-12s %-8s %-8s %8s  %s\n",
			b.Time.UTC().Format("2006-01-02T15:04:05Z"), b.User, b.Result, b.Reason,
			b.Duration.Round(time.Millisecond), b.Trace)
	}
	return nil
}

// sniffSegments picks between the two segment-log consumers sharing the
// .seg layout: incident-NNNNNN.seg bundles select the incident reader,
// anything else keeps the flight recorder default.
func sniffSegments(path string, isDir bool) string {
	if !isDir {
		if strings.HasPrefix(filepath.Base(path), prof.SegPrefix) {
			return "incident"
		}
		return "flightrec"
	}
	if entries, err := os.ReadDir(path); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), prof.SegPrefix) && strings.HasSuffix(e.Name(), seglog.SegSuffix) {
				return "incident"
			}
		}
	}
	return "flightrec"
}

// analyzeIncidents summarises an incident bundle directory; with id set
// it renders one bundle, and with profile set it extracts that bundle's
// newest raw pprof profile instead.
func analyzeIncidents(path, id, profile, out string, topN int) error {
	incidents, err := prof.ReadDir(path)
	if err != nil {
		return err
	}
	if id == "" {
		if profile != "" {
			return fmt.Errorf("-profile requires -incident")
		}
		triggers := map[string]int{}
		for _, inc := range incidents {
			triggers[inc.Trigger]++
		}
		fmt.Printf("incident bundles: %d\n", len(incidents))
		names := make([]string, 0, len(triggers))
		for t := range triggers {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Printf("  %-16s %d\n", t, triggers[t])
		}
		fmt.Printf("\nnewest %d:\n", topN)
		for i := len(incidents) - 1; i >= 0 && i >= len(incidents)-topN; i-- {
			inc := incidents[i]
			fmt.Printf("  %s %s %-16s captures=%d traces=%d  %s\n",
				inc.ID, inc.Time.UTC().Format("2006-01-02T15:04:05Z"), inc.Trigger,
				len(inc.Captures), len(inc.TraceIDs), inc.Detail)
		}
		return nil
	}
	for _, inc := range incidents {
		if inc.ID != id {
			continue
		}
		if profile != "" {
			return extractProfile(inc, profile, out)
		}
		renderIncident(inc)
		return nil
	}
	return fmt.Errorf("no incident %s (%d bundles read)", id, len(incidents))
}

// extractProfile writes the newest capture's raw pprof bytes for one
// profile kind, ready for `go tool pprof <file>`.
func extractProfile(inc *prof.Incident, kind, out string) error {
	for i := len(inc.Captures) - 1; i >= 0; i-- {
		b, ok := inc.Captures[i].Profiles[kind]
		if !ok {
			continue
		}
		if out == "" {
			out = fmt.Sprintf("%s-%s.pb.gz", inc.ID, kind)
		}
		if err := os.WriteFile(out, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: wrote %s profile from capture %d (%d bytes) to %s\n",
			inc.ID, kind, i, len(b), out)
		return nil
	}
	return fmt.Errorf("%s has no %q profile in any capture", inc.ID, kind)
}

func renderIncident(inc *prof.Incident) {
	fmt.Printf("incident %s\n", inc.ID)
	fmt.Printf("  time:    %s\n", inc.Time.UTC().Format(time.RFC3339))
	fmt.Printf("  trigger: %s\n", inc.Trigger)
	if inc.Detail != "" {
		fmt.Printf("  detail:  %s\n", inc.Detail)
	}
	r := inc.Runtime
	fmt.Printf("  runtime: %s cpus=%d gomaxprocs=%d goroutines=%d heap=%dB objects=%d gc=%d pause=%s\n",
		r.GoVersion, r.NumCPU, r.GOMAXPROCS, r.NumGoroutine,
		r.HeapAlloc, r.HeapObjects, r.NumGC, time.Duration(r.PauseTotalNs))
	if len(inc.TraceIDs) > 0 {
		fmt.Printf("  flight-recorder traces (inspect with -format flightrec -trace <id>):\n")
		for _, t := range inc.TraceIDs {
			fmt.Printf("    %s\n", t)
		}
	}
	fmt.Printf("  captures (%d, oldest first; extract with -profile <kind> [-out file]):\n", len(inc.Captures))
	for i, c := range inc.Captures {
		kinds := make([]string, 0, len(c.Profiles))
		for k := range c.Profiles {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("    [%d] %s cpu_window=%.3gs bytes=%d kinds=%v",
			i, c.Time.UTC().Format("2006-01-02T15:04:05Z"), c.CPUSeconds, c.Bytes, kinds)
		if c.Err != "" {
			fmt.Printf(" err=%q", c.Err)
		}
		fmt.Println()
	}
	fmt.Printf("  metrics snapshot: %d bytes\n", len(inc.Metrics))
	fmt.Printf("  goroutine dump (%d bytes, truncated=%v):\n", len(inc.Goroutines), inc.GoroutinesTruncated)
	for _, line := range strings.Split(strings.TrimRight(inc.Goroutines, "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
}

// readEvents loads the log in the requested format. "auto" sniffs the
// first non-empty line: eventstream JSONL lines are JSON objects, so a
// leading '{' selects the JSONL reader.
func readEvents(path, format string) ([]authlog.Event, int, error) {
	if format == "auto" {
		sniffed, err := sniffFormat(path)
		if err != nil {
			return nil, 0, err
		}
		format = sniffed
	}
	switch format {
	case "authlog":
		return authlog.ReadFile(path)
	case "jsonl":
		stream, bad, err := eventstream.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		var events []authlog.Event
		for _, e := range stream {
			if ae, ok := eventstream.ToAuthlog(e); ok {
				events = append(events, ae)
			}
		}
		return events, bad, nil
	default:
		return nil, 0, fmt.Errorf("unknown -format %q (want authlog, jsonl, or auto)", format)
	}
}

func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			return "jsonl", nil
		}
		return "authlog", nil
	}
	return "authlog", sc.Err()
}

func toSet(csv string) map[string]bool {
	out := map[string]bool{}
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out[s] = true
		}
	}
	return out
}

func shellList(m map[string]int) []string {
	var out []string
	for s := range m {
		out = append(out, s)
	}
	return out
}
