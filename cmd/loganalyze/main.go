// Command loganalyze runs the §4.1 information-gathering pipeline over an
// auth log file: rank users by login events, classify TTY vs scripted
// entries, apply the staff-activity threshold, and list the accounts to
// contact about their automated workflows.
//
// Example:
//
//	loganalyze -log /var/log/openmfa/secure.log \
//	           -staff cproctor,storm -known-gateways gateway1,tg803
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"openmfa/internal/authlog"
	"openmfa/internal/loganalysis"
)

func main() {
	var (
		logPath  = flag.String("log", "", "auth log file (required)")
		staff    = flag.String("staff", "", "comma-separated staff accounts (threshold reference)")
		gateways = flag.String("known-gateways", "", "comma-separated known gateway/community accounts to filter")
		fromStr  = flag.String("from", "", "window start YYYY-MM-DD (default: all)")
		toStr    = flag.String("to", "", "window end YYYY-MM-DD (default: all)")
		topN     = flag.Int("top", 20, "ranking rows to print")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("loganalyze: -log required")
	}

	events, bad, err := authlog.ReadFile(*logPath)
	if err != nil {
		log.Fatalf("loganalyze: %v", err)
	}
	if bad > 0 {
		log.Printf("loganalyze: skipped %d malformed lines", bad)
	}

	from := time.Time{}
	to := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	if *fromStr != "" {
		if from, err = time.Parse("2006-01-02", *fromStr); err != nil {
			log.Fatalf("loganalyze: bad -from: %v", err)
		}
	}
	if *toStr != "" {
		if to, err = time.Parse("2006-01-02", *toStr); err != nil {
			log.Fatalf("loganalyze: bad -to: %v", err)
		}
		to = to.AddDate(0, 0, 1)
	}

	report := loganalysis.Analyze(events, from, to)
	fmt.Print(report.Summary(*topN))

	staffSet := toSet(*staff)
	exclude := toSet(*gateways)
	for s := range staffSet {
		exclude[s] = true
	}
	threshold := report.StaffThreshold(staffSet)
	fmt.Printf("\nstaff threshold: %d logins\n", threshold)
	targets := report.Targets(threshold, exclude)
	fmt.Printf("accounts to contact (> threshold, excluding staff/known gateways): %d\n", len(targets))
	for _, u := range targets {
		fmt.Printf("  %-16s %6d logins, %3.0f%% non-TTY, shells %v\n",
			u.User, u.Logins, 100*u.NonTTYFraction(), shellList(u.Shells))
	}
	fmt.Printf("these accounts produce %.0f%% of all login events\n",
		100*report.AutomationShare(targets))
}

func toSet(csv string) map[string]bool {
	out := map[string]bool{}
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out[s] = true
		}
	}
	return out
}

func shellList(m map[string]int) []string {
	var out []string
	for s := range m {
		out = append(out, s)
	}
	return out
}
