// Command rollout regenerates the paper's evaluation: it simulates the
// phased MFA deployment over the Aug 2016 – Mar 2017 calendar, driving the
// real PAM → RADIUS → otpd stack for every login, and prints each figure
// and table alongside the paper's claims.
//
// Usage:
//
//	rollout -all                 # every experiment (default)
//	rollout -fig 3               # one figure (3, 4, 5, or 6)
//	rollout -table 1             # Table 1
//	rollout -costs               # the §3.3 SMS cost model
//	rollout -analysis            # the §4.1 log analysis
//	rollout -experiments         # EXPERIMENTS.md body (markdown)
//	rollout -users 1200 -seed 1  # population knobs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"openmfa/internal/rollout"
)

func main() {
	var (
		users       = flag.Int("users", 1200, "population size")
		seed        = flag.Int64("seed", 1, "random seed")
		fig         = flag.Int("fig", 0, "print one figure (3..6)")
		table       = flag.Int("table", 0, "print one table (1)")
		costs       = flag.Bool("costs", false, "print the SMS cost model")
		analysis    = flag.Bool("analysis", false, "print the §4.1 log analysis")
		experiments = flag.Bool("experiments", false, "print the EXPERIMENTS.md body")
		all         = flag.Bool("all", false, "print everything")
		quiet       = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if *fig == 0 && *table == 0 && !*costs && !*analysis && !*experiments {
		*all = true
	}

	cfg := rollout.Config{Users: *users, Seed: *seed}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	res, err := rollout.Run(cfg)
	if err != nil {
		log.Fatalf("rollout: %v", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "rollout: simulation finished in %s\n\n", time.Since(start).Round(time.Millisecond))
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, res.ObservabilityReport())
	}
	if *all {
		fmt.Println(res.Summary())
		fmt.Println(res.Figure3())
		fmt.Println(res.Figure4())
		fmt.Println(res.Figure5())
		fmt.Println(res.Figure6())
		fmt.Println(res.Table1Report())
		fmt.Println(res.CostReport())
		fmt.Println(res.Analysis.Summary(15))
		return
	}
	switch *fig {
	case 3:
		fmt.Println(res.Figure3())
	case 4:
		fmt.Println(res.Figure4())
	case 5:
		fmt.Println(res.Figure5())
	case 6:
		fmt.Println(res.Figure6())
	case 0:
	default:
		log.Fatalf("rollout: unknown figure %d", *fig)
	}
	if *table == 1 {
		fmt.Println(res.Table1Report())
	} else if *table != 0 {
		log.Fatalf("rollout: unknown table %d", *table)
	}
	if *costs {
		fmt.Println(res.CostReport())
	}
	if *analysis {
		fmt.Println(res.Analysis.Summary(15))
	}
	if *experiments {
		fmt.Println(res.ExperimentsMarkdown())
	}
}
