// Command rollout regenerates the paper's evaluation: it simulates the
// phased MFA deployment over the Aug 2016 – Mar 2017 calendar, driving the
// real PAM → RADIUS → otpd stack for every login, and prints each figure
// and table alongside the paper's claims.
//
// Usage:
//
//	rollout -all                 # every experiment (default)
//	rollout -fig 3               # one figure (3, 4, 5, or 6)
//	rollout -table 1             # Table 1
//	rollout -costs               # the §3.3 SMS cost model
//	rollout -analysis            # the §4.1 log analysis
//	rollout -experiments         # EXPERIMENTS.md body (markdown)
//	rollout -risk                # adaptive-MFA attack-mix evaluation
//	rollout -users 1200 -seed 1  # population knobs
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/rollout"
)

func main() {
	var (
		users       = flag.Int("users", 1200, "population size")
		seed        = flag.Int64("seed", 1, "random seed")
		fig         = flag.Int("fig", 0, "print one figure (3..6)")
		table       = flag.Int("table", 0, "print one table (1)")
		costs       = flag.Bool("costs", false, "print the SMS cost model")
		analysis    = flag.Bool("analysis", false, "print the §4.1 log analysis")
		experiments = flag.Bool("experiments", false, "print the EXPERIMENTS.md body")
		all         = flag.Bool("all", false, "print everything")
		quiet       = flag.Bool("q", false, "suppress progress output")
		riskEval    = flag.Bool("risk", false, "run the adaptive-MFA attack-mix evaluation (engine off vs on) instead of the rollout simulation")
		riskUsers   = flag.Int("risk-users", 24, "accounts per risk scenario")
		riskDays    = flag.Int("risk-days", 8, "days per risk scenario")
		authWatch   = flag.Bool("authwatch", false, "stream events through the live authwatch aggregator and cross-check it against the batch report (non-zero exit on mismatch)")
		eventsOut   = flag.String("events-out", "", "write the run's auth-event stream as JSONL to this file (readable by loganalyze -format jsonl)")
		shards      = flag.Int("store-shards", 0, "store shard count for the simulated back ends (0 = GOMAXPROCS-scaled)")
	)
	flag.Parse()
	if *fig == 0 && *table == 0 && !*costs && !*analysis && !*experiments {
		*all = true
	}

	cfg := rollout.Config{Users: *users, Seed: *seed, StoreShards: *shards}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Streaming consumers: the live authwatch aggregator (cross-checked
	// against the batch report after the run) and/or a JSONL event dump.
	// Neither changes the simulation's randomness or its stdout report.
	var (
		bus      *eventstream.Bus
		watch    *authwatch.Watcher
		dumpDone chan struct{}
		dumpSub  *eventstream.Subscription
		dumpErr  error
	)
	if *authWatch || *eventsOut != "" {
		bus = eventstream.NewBus(nil)
		cfg.Events = bus
	}
	if *authWatch {
		watch = authwatch.New(authwatch.Config{})
		// The watcher keeps pace easily (map updates vs live RADIUS round
		// trips), but a deep buffer makes drops structurally impossible on
		// a stalled scheduler too: parity demands every event.
		watch.Attach(bus, 1<<16)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatalf("rollout: %v", err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		enc := json.NewEncoder(w)
		dumpSub = bus.Subscribe(1 << 16)
		dumpDone = make(chan struct{})
		go func() {
			defer close(dumpDone)
			for e := range dumpSub.Events() {
				if err := enc.Encode(e); err != nil && dumpErr == nil {
					dumpErr = err
				}
			}
			if err := w.Flush(); err != nil && dumpErr == nil {
				dumpErr = err
			}
			if err := f.Close(); err != nil && dumpErr == nil {
				dumpErr = err
			}
		}()
	}

	closeDump := func() {
		if dumpSub == nil {
			return
		}
		dropped := dumpSub.Dropped()
		dumpSub.Close()
		<-dumpDone
		if dumpErr != nil {
			log.Fatalf("rollout: events-out: %v", dumpErr)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "rollout: event stream written to %s (%d dropped)\n", *eventsOut, dropped)
		}
	}

	if *riskEval {
		rcfg := rollout.RiskEvalConfig{
			Users: *riskUsers, Days: *riskDays, Seed: *seed,
			Events: bus, StoreShards: *shards, Logf: cfg.Logf,
		}
		start := time.Now()
		rres, err := rollout.RunRiskEval(rcfg)
		if err != nil {
			log.Fatalf("rollout: %v", err)
		}
		closeDump()
		failed := false
		if watch != nil {
			watch.Stop()
			if err := rollout.RiskCrossCheck(rres, watch); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			} else if !*quiet {
				fmt.Fprintln(os.Stderr, rollout.RiskCrossCheckSummary(rres, watch))
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "rollout: risk evaluation finished in %s\n\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Println(rres.Report())
		if failed {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	res, err := rollout.Run(cfg)
	if err != nil {
		log.Fatalf("rollout: %v", err)
	}

	closeDump()
	crosscheckFailed := false
	if watch != nil {
		watch.Stop() // drains the subscription before we compare
		if err := rollout.CrossCheck(res, watch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			crosscheckFailed = true
		} else if !*quiet {
			fmt.Fprintln(os.Stderr, rollout.CrossCheckSummary(res, watch))
		}
	}
	defer func() {
		if crosscheckFailed {
			os.Exit(1)
		}
	}()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "rollout: simulation finished in %s\n\n", time.Since(start).Round(time.Millisecond))
	}

	if !*quiet {
		fmt.Fprintln(os.Stderr, res.ObservabilityReport())
	}
	if *all {
		fmt.Println(res.Summary())
		fmt.Println(res.Figure3())
		fmt.Println(res.Figure4())
		fmt.Println(res.Figure5())
		fmt.Println(res.Figure6())
		fmt.Println(res.Table1Report())
		fmt.Println(res.CostReport())
		fmt.Println(res.Analysis.Summary(15))
		return
	}
	switch *fig {
	case 3:
		fmt.Println(res.Figure3())
	case 4:
		fmt.Println(res.Figure4())
	case 5:
		fmt.Println(res.Figure5())
	case 6:
		fmt.Println(res.Figure6())
	case 0:
	default:
		log.Fatalf("rollout: unknown figure %d", *fig)
	}
	if *table == 1 {
		fmt.Println(res.Table1Report())
	} else if *table != 0 {
		log.Fatalf("rollout: unknown table %d", *table)
	}
	if *costs {
		fmt.Println(res.CostReport())
	}
	if *analysis {
		fmt.Println(res.Analysis.Summary(15))
	}
	if *experiments {
		fmt.Println(res.ExperimentsMarkdown())
	}
}
