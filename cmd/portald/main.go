// Command portald serves the user portal against an existing otpd admin
// API, with its own IDM store — the §3.5 front end as a standalone
// process.
//
// Example:
//
//	portald -http 127.0.0.1:8080 -otpd http://127.0.0.1:8443 \
//	        -otpd-user portal -otpd-pass secret -data /var/lib/portal
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"openmfa/internal/cryptoutil"
	"openmfa/internal/directory"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
	"openmfa/internal/otpd"
	"openmfa/internal/portal"
	"openmfa/internal/store"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "portal listen address")
		otpdURL  = flag.String("otpd", "", "otpd admin API base URL (required)")
		otpdUser = flag.String("otpd-user", "portal", "digest username for the admin API")
		otpdPass = flag.String("otpd-pass", "", "digest password for the admin API (required)")
		dataDir  = flag.String("data", "", "IDM data directory (empty = in-memory)")
		baseURL  = flag.String("base-url", "", "public base URL for signed links (default http://<http>)")
		demo     = flag.Bool("demo", false, "create a demo account (demo/demo-pass)")
		shards   = flag.Int("store-shards", 0, "store shard count, rounded up to a power of two (0 = GOMAXPROCS-scaled; existing data dirs keep their count)")
		group    = flag.Bool("store-group-commit", true, "coalesce concurrent commits into shared fsyncs")

		profDir      = flag.String("prof-dir", "", "incident bundle segment directory; enables the continuous profiler + incident engine (empty = disabled)")
		profPeriod   = flag.Duration("prof-period", 30*time.Second, "continuous profiler sampling period")
		profCPU      = flag.Duration("prof-cpu", 250*time.Millisecond, "delta CPU profile window per sample (clamped to a tenth of -prof-period)")
		profRetain   = flag.Int("prof-retain", 8, "profile captures kept in the in-memory ring")
		profDebounce = flag.Duration("prof-debounce", 10*time.Minute, "minimum spacing between trigger-fired incident bundles")
	)
	var slos slo.SpecList
	flag.Var(&slos, "slo", "availability SLO over portal HTTP requests (non-5xx = good), name:target%<threshold/window; repeatable")
	flag.Parse()
	if *otpdURL == "" || *otpdPass == "" {
		log.Fatal("portald: -otpd and -otpd-pass are required")
	}

	reg := obs.NewRegistry()
	// Go runtime telemetry (goroutines, heap, GC pauses) on the registry.
	rt := obs.StartRuntimeSampler(reg, 0)
	defer rt.Stop()

	// Availability SLOs over the per-route/per-status request counters:
	// any non-5xx answer is good service. FamilySource follows series as
	// routes are first hit, so nothing needs pre-registering.
	eng := slo.New(slo.Config{Obs: reg})
	for _, spec := range slos {
		if err := eng.Add(slo.Objective{
			Name: spec.Name, Target: spec.Target, Window: spec.Window,
			Source: slo.FamilySource{
				Reg: reg, Family: "portal_http_requests_total",
				Good: func(labels string) bool { return !strings.Contains(labels, `code="5`) },
			},
		}); err != nil {
			log.Fatalf("portald: %v", err)
		}
	}
	eng.Start(0)
	defer eng.Stop()

	var db *store.Store
	var err error
	if *dataDir == "" {
		db = store.OpenMemoryShards(*shards)
	} else if db, err = store.Open(*dataDir, store.Options{
		Sync: true, Shards: *shards, GroupCommit: *group, Obs: reg,
	}); err != nil {
		log.Fatalf("portald: %v", err)
	}
	defer db.Close()

	// Continuous profiler + incident engine (see cmd/otpd): the portal
	// wires SLO fast-burn, a sticky IDM-store WAL fault, and the manual
	// endpoint; it has no flight recorder, so bundles carry no trace IDs.
	var profEng *prof.Engine
	if *profDir != "" {
		profEng, err = prof.New(prof.Config{
			Dir:           *profDir,
			Obs:           reg,
			Period:        *profPeriod,
			CPUDuration:   *profCPU,
			Retention:     *profRetain,
			Debounce:      *profDebounce,
			MutexFraction: 100,
		})
		if err != nil {
			log.Fatalf("portald: %v", err)
		}
		profEng.AddTrigger("slo_fast_burn", prof.HealthTrigger(eng.Health))
		profEng.AddTrigger("store_error", prof.HealthTrigger(db.Err))
		profEng.Start()
		defer profEng.Stop()
	}

	dir := directory.New()
	users := idm.New(db, dir, nil)
	if *demo {
		if _, err := users.Create("demo", "demo@hpc.example", "demo-pass", idm.ClassUser); err != nil {
			log.Printf("portald: demo account: %v", err)
		}
	}

	base := *baseURL
	if base == "" {
		base = "http://" + *httpAddr
	}
	p, err := portal.New(portal.Config{
		IDM: users,
		Admin: &otpd.AdminClient{
			BaseURL: *otpdURL, Username: *otpdUser, Password: *otpdPass,
		},
		Email: portal.EmailFunc(func(to, subject, body string) error {
			log.Printf("portald: EMAIL to %s: %s\n%s", to, subject, body)
			return nil
		}),
		SessionKey:   cryptoutil.RandomBytes(32),
		BaseURL:      base,
		Obs:          reg,
		HealthChecks: []obs.HealthCheck{eng.Health},
		ExtraMounts:  []func(*http.ServeMux){eng.Mount, profEng.Mount},
	})
	if err != nil {
		log.Fatalf("portald: %v", err)
	}
	fmt.Printf("portald: serving on %s (otpd at %s; /metrics, /healthz, /debug/pprof mounted)\n", *httpAddr, *otpdURL)
	if err := http.ListenAndServe(*httpAddr, p.Handler()); err != nil {
		log.Fatalf("portald: %v", err)
	}
}
