// Command otpd runs the OTP validation platform (the LinOTP substitute):
// a RADIUS front end for login nodes plus the digest-authenticated admin
// REST API the portal drives.
//
// Example:
//
//	otpd -data /var/lib/otpd -radius 127.0.0.1:1812 -http 127.0.0.1:8443 \
//	     -key-hex $(openssl rand -hex 32) -admin-user portal -admin-pass secret
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/flightrec"
	"openmfa/internal/geoip"
	"openmfa/internal/httpdigest"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
	"openmfa/internal/otpd"
	"openmfa/internal/radius"
	"openmfa/internal/risk"
	"openmfa/internal/store"
	"openmfa/internal/store/repl"
)

func main() {
	var (
		dataDir    = flag.String("data", "", "data directory (empty = in-memory)")
		radiusAddr = flag.String("radius", "127.0.0.1:1812", "RADIUS listen address")
		httpAddr   = flag.String("http", "127.0.0.1:8443", "admin API listen address")
		secret     = flag.String("radius-secret", "testing123", "RADIUS shared secret")
		keyHex     = flag.String("key-hex", "", "hex AES key for secret storage (32/48/64 hex chars)")
		adminUser  = flag.String("admin-user", "portal", "admin API digest username")
		adminPass  = flag.String("admin-pass", "", "admin API digest password (required)")
		issuer     = flag.String("issuer", "HPC", "otpauth issuer label")
		logRate    = flag.Int("log-rate", 200, "max identical log lines per second before sampling (0 = unlimited)")
		shards     = flag.Int("store-shards", 0, "store shard count, rounded up to a power of two (0 = GOMAXPROCS-scaled; existing data dirs keep their count)")
		groupSync  = flag.Bool("store-group-commit", true, "coalesce concurrent commits into shared fsyncs")
		coalesce   = flag.Bool("coalesce-writes", true, "batch concurrent record saves into shared WAL frames")

		replListen  = flag.String("repl-listen", "", "replication leader listen address (empty = not a leader)")
		replFollow  = flag.String("repl-follow", "", "leader replication address to follow; makes this otpd a standby (no RADIUS listener, local writes refused)")
		replMinSync = flag.Int("repl-min-sync", 0, "follower acknowledgements required before a commit returns (0 = asynchronous)")
		replSyncTO  = flag.Duration("repl-sync-timeout", 2*time.Second, "bound on the -repl-min-sync wait; past it the write (and the login) fails closed")

		riskOn = flag.Bool("risk", false, "attach an advisory risk engine to the event bus: every login is scored (risk_* metrics) and the decision republished as a risk event")

		flightDir    = flag.String("flightrec-dir", "", "flight recorder segment directory (empty = disabled)")
		flightSample = flag.Float64("flightrec-sample", 0.01, "fraction of unremarkable successful checks the flight recorder keeps")
		flightSlow   = flag.Duration("flightrec-slow", 750*time.Millisecond, "flight recorder slow-check threshold")

		profDir      = flag.String("prof-dir", "", "incident bundle segment directory; enables the continuous profiler + incident engine (empty = disabled)")
		profPeriod   = flag.Duration("prof-period", 30*time.Second, "continuous profiler sampling period")
		profCPU      = flag.Duration("prof-cpu", 250*time.Millisecond, "delta CPU profile window per sample (clamped to a tenth of -prof-period)")
		profRetain   = flag.Int("prof-retain", 8, "profile captures kept in the in-memory ring")
		profDebounce = flag.Duration("prof-debounce", 10*time.Minute, "minimum spacing between trigger-fired incident bundles")
		profSlow     = flag.Duration("prof-slow", 750*time.Millisecond, "latency-spike trigger threshold on otpd check duration")
	)
	var slos slo.SpecList
	flag.Var(&slos, "slo", "SLO over check latency, name:target%<threshold/window (e.g. checks:99.5%<750ms/30d); repeatable")
	flag.Parse()
	if *adminPass == "" {
		log.Fatal("otpd: -admin-pass required")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil || (len(key) != 16 && len(key) != 24 && len(key) != 32) {
		log.Fatal("otpd: -key-hex must decode to 16, 24, or 32 bytes")
	}

	reg := obs.NewRegistry()

	var db *store.Store
	if *dataDir == "" {
		db = store.OpenMemoryShards(*shards)
	} else {
		db, err = store.Open(*dataDir, store.Options{
			Sync: true, Shards: *shards, GroupCommit: *groupSync, Obs: reg,
		})
		if err != nil {
			log.Fatalf("otpd: %v", err)
		}
	}
	defer db.Close()
	if *replListen != "" && *replFollow != "" {
		log.Fatal("otpd: -repl-listen and -repl-follow are mutually exclusive")
	}

	// When the flight recorder is on, the log stream is teed so each
	// trace's lines can ride along in its bundle.
	var logSink io.Writer = os.Stderr
	var tee *flightrec.LogTee
	if *flightDir != "" {
		tee = flightrec.NewLogTee(os.Stderr, 0, 0)
		logSink = tee
	}
	logger := obs.NewLogger(logSink, obs.LevelInfo)
	if *logRate > 0 {
		// Identical lines beyond the per-key budget are sampled out and
		// counted in log_events_suppressed_total.
		logger = logger.RateLimit(*logRate, time.Second, reg)
	}

	// Replication endpoints. A leader bumps the store's fencing epoch and
	// streams committed WAL frames; a standby refuses local writes and
	// replays the leader's log. Promotion is a restart of the standby
	// with -repl-listen in place of -repl-follow.
	var leader *repl.Leader
	if *replListen != "" {
		leader, err = repl.StartLeader(db, repl.LeaderOptions{
			Addr:        *replListen,
			MinSync:     *replMinSync,
			SyncTimeout: *replSyncTO,
			Obs:         reg,
			Logger:      logger,
		})
		if err != nil {
			log.Fatalf("otpd: repl: %v", err)
		}
		defer leader.Close()
		log.Printf("otpd: replication leader on %s (epoch %d, min-sync %d)",
			leader.Addr(), db.Epoch(), *replMinSync)
	}
	if *replFollow != "" {
		follower, err := repl.StartFollower(db, repl.FollowerOptions{
			Addr:   *replFollow,
			Obs:    reg,
			Logger: logger,
		})
		if err != nil {
			log.Fatalf("otpd: repl: %v", err)
		}
		defer follower.Stop()
		log.Printf("otpd: standby following %s (local writes refused until promotion)", *replFollow)
	}

	// Go runtime telemetry (goroutines, heap, GC pauses) on the registry.
	rt := obs.StartRuntimeSampler(reg, 0)
	defer rt.Stop()

	// SLO engine over the check-latency histograms: a decision in any
	// result class under the spec's threshold is good service (a fast
	// fail-closed rejection meets the objective; a slow or erroring check
	// does not).
	eng := slo.New(slo.Config{Obs: reg})
	for _, spec := range slos {
		var src slo.MultiSource
		for _, res := range []string{"ok", "invalid", "locked_out", "error"} {
			src = append(src, slo.HistogramSource{
				H:         reg.Histogram("otpd_check_duration_seconds", nil, "result", res),
				Threshold: spec.Threshold.Seconds(),
			})
		}
		if err := eng.Add(slo.Objective{
			Name: spec.Name, Target: spec.Target, Window: spec.Window, Source: src,
			Description: fmt.Sprintf("%.4g%% of checks decided in <%s over %s", 100*spec.Target, spec.Threshold, spec.Window),
		}); err != nil {
			log.Fatalf("otpd: %v", err)
		}
	}
	eng.Start(0)
	defer eng.Stop()

	// Span store, analytics bus, and streaming aggregator: every check
	// records an otpd.check span, every decision lands on the bus, and the
	// watcher turns the stream into live Figure 3-6 aggregates plus alert
	// rules that degrade /healthz. The SLO engine's fast-burn check rides
	// on the watcher's Health, so an error-budget burn 503s /healthz too.
	spans := obs.NewSpanStore(0)
	bus := eventstream.NewBus(reg)
	watch := authwatch.New(authwatch.Config{
		Obs:         reg,
		ExtraHealth: []obs.HealthCheck{eng.Health},
	})
	watch.Attach(bus, 0)
	defer watch.Stop()

	// Advisory adaptive-MFA engine (DESIGN.md §14): scores every login
	// event against the account's streaming profile and republishes the
	// decision. The engine ignores its own risk events, so sharing the bus
	// does not loop; enforcement (the PAM risk gate) lives login-node side.
	if *riskOn {
		riskEng := risk.New(risk.Options{Geo: geoip.Synthetic(), Obs: reg, Events: bus})
		riskEng.Attach(bus, 1<<12)
		defer riskEng.Stop()
		log.Printf("otpd: advisory risk engine attached (risk_* metrics, decisions on the bus)")
	}

	// Flight recorder: RADIUS decisions complete a trace; failed, slow,
	// lockout-coincident, and alert-coincident checks are always kept.
	var rec *flightrec.Recorder
	if *flightDir != "" {
		rec, err = flightrec.New(flightrec.Config{
			Dir: *flightDir, Bus: bus, Spans: spans, Logs: tee, Obs: reg,
			CompleteOn: []eventstream.Type{eventstream.TypeRadius},
			Policy: flightrec.Policy{
				SampleRate:    *flightSample,
				SlowThreshold: *flightSlow,
				AlertActive:   func() bool { return watch.Health() != nil },
			},
		})
		if err != nil {
			log.Fatalf("otpd: %v", err)
		}
		defer rec.Stop()
	}

	// Continuous profiler + incident engine: the black box. Triggers
	// cover every existing signal — SLO fast burn, authwatch alert,
	// latency spike on the check histograms, a sticky store WAL fault —
	// and /debug/prof/capture fires manually. Debounce keeps a flapping
	// alert from filling the disk.
	var profEng *prof.Engine
	if *profDir != "" {
		profEng, err = prof.New(prof.Config{
			Dir:           *profDir,
			Obs:           reg,
			Period:        *profPeriod,
			CPUDuration:   *profCPU,
			Retention:     *profRetain,
			Debounce:      *profDebounce,
			MutexFraction: 100,
			TraceIDs: func(n int) []string {
				if rec == nil {
					return nil
				}
				sums := rec.List(flightrec.Query{Limit: n})
				ids := make([]string, 0, len(sums))
				for _, s := range sums {
					ids = append(ids, s.Trace)
				}
				return ids
			},
		})
		if err != nil {
			log.Fatalf("otpd: %v", err)
		}
		profEng.AddTrigger("slo_fast_burn", prof.HealthTrigger(eng.Health))
		profEng.AddTrigger("authwatch_alert", prof.HealthTrigger(watch.Health))
		var hists []*obs.Histogram
		for _, res := range []string{"ok", "invalid", "locked_out", "error"} {
			hists = append(hists, reg.Histogram("otpd_check_duration_seconds", nil, "result", res))
		}
		profEng.AddTrigger("latency_spike", prof.LatencySpikeTrigger(hists, profSlow.Seconds(), 20))
		profEng.AddTrigger("store_error", prof.HealthTrigger(db.Err))
		profEng.Start()
		defer profEng.Stop()
	}

	srv, err := otpd.New(otpd.Config{
		DB: db, EncryptionKey: key, Issuer: *issuer,
		Obs: reg, Logger: logger,
		Spans: spans, Events: bus,
		CoalesceWrites: *coalesce,
	})
	if err != nil {
		log.Fatalf("otpd: %v", err)
	}

	// A standby keeps the admin API and ops endpoints up for health
	// checks, but does not answer RADIUS: the login-node pool is pointed
	// at leaders only, and a standby's store would refuse the writes a
	// login needs anyway.
	if *replFollow == "" {
		rsrv := &radius.Server{
			Secret:  []byte(*secret),
			Handler: &otpd.RadiusHandler{OTP: srv},
			Logf:    log.Printf,
			Obs:     reg,
			Logger:  logger,
			Events:  bus,
		}
		if err := rsrv.ListenAndServe(*radiusAddr); err != nil {
			log.Fatalf("otpd: radius: %v", err)
		}
		defer rsrv.Close()
		log.Printf("otpd: RADIUS on %s", rsrv.Addr())
	}

	api := &otpd.AdminAPI{
		OTP:   srv,
		Realm: "otpd-admin",
		Creds: httpdigest.StaticCredentials{
			*adminUser: httpdigest.HA1(*adminUser, "otpd-admin", *adminPass),
		},
	}
	// Ops endpoints ride on the admin listener: /metrics, /healthz, and
	// /debug/pprof next to the digest-authenticated admin routes.
	mux := http.NewServeMux()
	obs.Mount(mux, reg, watch.Health)
	watch.Mount(mux)
	eng.Mount(mux)
	if rec != nil {
		rec.Mount(mux)
	}
	profEng.Mount(mux)
	leader.Mount(mux)
	mux.Handle("/", api.Handler())
	go func() {
		log.Printf("otpd: admin API on %s (+ /metrics, /healthz, /debug/pprof, /debug/authwatch, /debug/slo, /debug/flightrec, /debug/prof, /debug/repl)", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, mux); err != nil {
			log.Fatalf("otpd: http: %v", err)
		}
	}()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	fmt.Fprintln(os.Stderr, "otpd: shutting down")
}
