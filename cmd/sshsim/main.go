// Command sshsim stands up the complete MFA infrastructure — login node,
// RADIUS farm, OTP back end, directory, SMS gateway, and portal — and
// either serves it for external clients or drives an interactive login
// against it from the terminal.
//
// Server (prints all service addresses, creates a demo user):
//
//	sshsim -serve -mode full
//
// Interactive client against a running server:
//
//	sshsim -connect 127.0.0.1:2222 -user demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"openmfa/internal/core"
	"openmfa/internal/idm"
	"openmfa/internal/pam"
	"openmfa/internal/sshd"
)

func main() {
	var (
		serve   = flag.Bool("serve", false, "run the full infrastructure")
		mode    = flag.String("mode", "full", "token enforcement mode (off|paired|countdown|full)")
		connect = flag.String("connect", "", "connect to a login node as a client")
		user    = flag.String("user", "demo", "username for -connect")
	)
	flag.Parse()

	switch {
	case *serve:
		runServer(*mode)
	case *connect != "":
		runClient(*connect, *user)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(modeStr string) {
	m, ok := pam.ParseMode(modeStr)
	if !ok {
		log.Fatalf("sshsim: bad mode %q", modeStr)
	}
	inf, err := core.New(core.Options{
		Mode:   m,
		Banner: "** openmfa demo login node: pair a device in the portal **",
	})
	if err != nil {
		log.Fatalf("sshsim: %v", err)
	}
	defer inf.Close()

	// A demo user with a soft token so the server is usable immediately.
	if _, err := inf.CreateUser("demo", "demo@hpc.example", "demo-pass", idm.ClassUser); err != nil {
		log.Fatalf("sshsim: %v", err)
	}
	enr, err := inf.PairSoft("demo")
	if err != nil {
		log.Fatalf("sshsim: %v", err)
	}

	fmt.Println(inf.String())
	fmt.Println("demo account:  user=demo password=demo-pass")
	fmt.Println("soft token:    " + enr.URI)
	fmt.Println("current code:  use `tokengen code -uri '...'` or the value below")
	if code, err := inf.OTP.CurrentCode("demo", 0); err == nil {
		fmt.Println("               " + code)
	}
	fmt.Println("connect with:  sshsim -connect " + inf.SSHAddr() + " -user demo")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}

func runClient(addr, user string) {
	stdin := bufio.NewReader(os.Stdin)
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		fmt.Print(prompt)
		line, err := stdin.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimRight(line, "\r\n"), nil
	}
	c, err := sshd.Dial(addr, sshd.DialOptions{User: user, TTY: true, Responder: r})
	if err != nil {
		log.Fatalf("sshsim: %v", err)
	}
	defer c.Close()
	for _, info := range r.Infos {
		fmt.Println(info)
	}
	if c.Banner != "" {
		fmt.Println(c.Banner)
	}
	fmt.Println("authenticated. type commands (hostname/whoami/date/squeue/scp), or 'exit'.")
	for {
		fmt.Printf("%s@login1$ ", user)
		line, err := stdin.ReadString('\n')
		if err != nil {
			return
		}
		cmd := strings.TrimSpace(line)
		if cmd == "exit" || cmd == "" && err != nil {
			return
		}
		if cmd == "" {
			continue
		}
		out, err := c.Exec(cmd)
		if err != nil {
			log.Fatalf("sshsim: %v", err)
		}
		fmt.Println(out)
	}
}
