// Command radiusd runs a standalone RADIUS proxy, the middle tier of the
// paper's §3.2 architecture: login nodes talk to a handful of proxies
// which chain to the server in front of the OTP database.
//
// Example:
//
//	radiusd -listen 127.0.0.1:1812 -secret nas-secret \
//	        -upstream 127.0.0.1:1813 -upstream-secret otpd-secret
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/faultnet"
	"openmfa/internal/obs"
	"openmfa/internal/radius"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:1812", "listen address")
		secret         = flag.String("secret", "", "shared secret with downstream NAS (required)")
		upstream       = flag.String("upstream", "", "upstream RADIUS server address (required)")
		upstreamSecret = flag.String("upstream-secret", "", "shared secret with upstream (required)")
		timeout        = flag.Duration("timeout", 2*time.Second, "upstream per-attempt timeout")
		obsAddr        = flag.String("obs-addr", "", "ops HTTP listen address (/metrics, /healthz, /debug/pprof); empty = disabled")

		// Fault injection (staging/chaos drills only): interposes the
		// faultnet layer on both the NAS-facing socket and the upstream
		// client so a single proxy can rehearse a degraded network.
		faultSeed    = flag.Int64("fault-seed", 1, "fault injection RNG seed")
		faultDrop    = flag.Float64("fault-drop", 0, "probability each datagram is silently dropped")
		faultDup     = flag.Float64("fault-dup", 0, "probability each datagram is sent twice")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "probability one byte of each datagram is flipped")
		faultDelay   = flag.Duration("fault-delay", 0, "base injected latency per send")
		faultJitter  = flag.Duration("fault-jitter", 0, "uniform extra injected latency per send")
	)
	flag.Parse()
	if *secret == "" || *upstream == "" || *upstreamSecret == "" {
		log.Fatal("radiusd: -secret, -upstream and -upstream-secret are required")
	}

	reg := obs.NewRegistry()
	// Request decisions stream onto the analytics bus; the watcher's alert
	// rules (e.g. a failure-rate burn at this proxy) degrade /healthz.
	bus := eventstream.NewBus(reg)
	watch := authwatch.New(authwatch.Config{Obs: reg})
	watch.Attach(bus, 0)
	defer watch.Stop()
	upstreamClient := &radius.Client{
		Addr: *upstream, Secret: []byte(*upstreamSecret), Timeout: *timeout,
	}
	srv := &radius.Server{
		Secret:  []byte(*secret),
		Handler: &radius.Proxy{Upstream: upstreamClient},
		Logf:    log.Printf,
		Obs:     reg,
		Logger:  obs.NewLogger(os.Stderr, obs.LevelInfo).RateLimit(200, time.Second, reg),
		Events:  bus,
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultCorrupt > 0 || *faultDelay > 0 || *faultJitter > 0 {
		fn := faultnet.New(faultnet.Config{
			Seed:        *faultSeed,
			Obs:         reg,
			DropRate:    *faultDrop,
			DupRate:     *faultDup,
			CorruptRate: *faultCorrupt,
			Delay:       *faultDelay,
			Jitter:      *faultJitter,
		})
		srv.ListenPacket = fn.ListenPacket
		upstreamClient.Dial = fn.Dial
		upstreamClient.Obs = reg
		log.Printf("radiusd: FAULT INJECTION ACTIVE (seed=%d drop=%.2f dup=%.2f corrupt=%.2f delay=%s jitter=%s)",
			*faultSeed, *faultDrop, *faultDup, *faultCorrupt, *faultDelay, *faultJitter)
	}
	if *obsAddr != "" {
		mux := http.NewServeMux()
		obs.Mount(mux, reg, watch.Health)
		watch.Mount(mux)
		go func() {
			log.Printf("radiusd: ops endpoints on %s (+ /debug/authwatch)", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, mux); err != nil {
				log.Fatalf("radiusd: obs: %v", err)
			}
		}()
	}
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatalf("radiusd: %v", err)
	}
	defer srv.Close()
	log.Printf("radiusd: proxying %s -> %s", srv.Addr(), *upstream)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
