// Command radiusd runs a standalone RADIUS proxy, the middle tier of the
// paper's §3.2 architecture: login nodes talk to a handful of proxies
// which chain to the server in front of the OTP database.
//
// Example:
//
//	radiusd -listen 127.0.0.1:1812 -secret nas-secret \
//	        -upstream 127.0.0.1:1813 -upstream-secret otpd-secret
package main

import (
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/faultnet"
	"openmfa/internal/flightrec"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
	"openmfa/internal/radius"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:1812", "listen address")
		secret         = flag.String("secret", "", "shared secret with downstream NAS (required)")
		upstream       = flag.String("upstream", "", "upstream RADIUS server address (required)")
		upstreamSecret = flag.String("upstream-secret", "", "shared secret with upstream (required)")
		timeout        = flag.Duration("timeout", 2*time.Second, "upstream per-attempt timeout")
		obsAddr        = flag.String("obs-addr", "", "ops HTTP listen address (/metrics, /healthz, /debug/pprof); empty = disabled")

		// Fault injection (staging/chaos drills only): interposes the
		// faultnet layer on both the NAS-facing socket and the upstream
		// client so a single proxy can rehearse a degraded network.
		faultSeed    = flag.Int64("fault-seed", 1, "fault injection RNG seed")
		faultDrop    = flag.Float64("fault-drop", 0, "probability each datagram is silently dropped")
		faultDup     = flag.Float64("fault-dup", 0, "probability each datagram is sent twice")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "probability one byte of each datagram is flipped")
		faultDelay   = flag.Duration("fault-delay", 0, "base injected latency per send")
		faultJitter  = flag.Duration("fault-jitter", 0, "uniform extra injected latency per send")

		flightDir    = flag.String("flightrec-dir", "", "flight recorder segment directory (empty = disabled)")
		flightSample = flag.Float64("flightrec-sample", 0.01, "fraction of unremarkable accepted requests the flight recorder keeps")
		flightSlow   = flag.Duration("flightrec-slow", 750*time.Millisecond, "flight recorder slow-request threshold")

		profDir      = flag.String("prof-dir", "", "incident bundle segment directory; enables the continuous profiler + incident engine (empty = disabled)")
		profPeriod   = flag.Duration("prof-period", 30*time.Second, "continuous profiler sampling period")
		profCPU      = flag.Duration("prof-cpu", 250*time.Millisecond, "delta CPU profile window per sample (clamped to a tenth of -prof-period)")
		profRetain   = flag.Int("prof-retain", 8, "profile captures kept in the in-memory ring")
		profDebounce = flag.Duration("prof-debounce", 10*time.Minute, "minimum spacing between trigger-fired incident bundles")
		profSlow     = flag.Duration("prof-slow", 750*time.Millisecond, "latency-spike trigger threshold on proxied request duration")
	)
	var slos slo.SpecList
	flag.Var(&slos, "slo", "SLO over request latency, name:target%<threshold/window (e.g. requests:99.5%<750ms/30d); repeatable")
	flag.Parse()
	if *secret == "" || *upstream == "" || *upstreamSecret == "" {
		log.Fatal("radiusd: -secret, -upstream and -upstream-secret are required")
	}

	reg := obs.NewRegistry()
	// Go runtime telemetry (goroutines, heap, GC pauses) on the registry.
	rt := obs.StartRuntimeSampler(reg, 0)
	defer rt.Stop()

	// SLO engine over the proxy's request-latency histogram: any decision
	// (accept or fast fail-closed reject) under the threshold is good.
	eng := slo.New(slo.Config{Obs: reg})
	for _, spec := range slos {
		if err := eng.Add(slo.Objective{
			Name: spec.Name, Target: spec.Target, Window: spec.Window,
			Source: slo.HistogramSource{
				H:         reg.Histogram("radius_request_duration_seconds", nil),
				Threshold: spec.Threshold.Seconds(),
			},
		}); err != nil {
			log.Fatalf("radiusd: %v", err)
		}
	}
	eng.Start(0)
	defer eng.Stop()

	// Request decisions stream onto the analytics bus; the watcher's alert
	// rules (e.g. a failure-rate burn at this proxy) degrade /healthz, and
	// the SLO engine's fast-burn check rides along via ExtraHealth.
	bus := eventstream.NewBus(reg)
	watch := authwatch.New(authwatch.Config{
		Obs:         reg,
		ExtraHealth: []obs.HealthCheck{eng.Health},
	})
	watch.Attach(bus, 0)
	defer watch.Stop()

	var logSink io.Writer = os.Stderr
	var tee *flightrec.LogTee
	if *flightDir != "" {
		tee = flightrec.NewLogTee(os.Stderr, 0, 0)
		logSink = tee
	}
	var rec *flightrec.Recorder
	if *flightDir != "" {
		var err error
		rec, err = flightrec.New(flightrec.Config{
			Dir: *flightDir, Bus: bus, Logs: tee, Obs: reg,
			CompleteOn: []eventstream.Type{eventstream.TypeRadius},
			Policy: flightrec.Policy{
				SampleRate:    *flightSample,
				SlowThreshold: *flightSlow,
				AlertActive:   func() bool { return watch.Health() != nil },
			},
		})
		if err != nil {
			log.Fatalf("radiusd: %v", err)
		}
		defer rec.Stop()
	}

	// Continuous profiler + incident engine (see cmd/otpd for the trigger
	// rationale); the proxy's latency spike watches its request histogram.
	var profEng *prof.Engine
	if *profDir != "" {
		var err error
		profEng, err = prof.New(prof.Config{
			Dir:           *profDir,
			Obs:           reg,
			Period:        *profPeriod,
			CPUDuration:   *profCPU,
			Retention:     *profRetain,
			Debounce:      *profDebounce,
			MutexFraction: 100,
			TraceIDs: func(n int) []string {
				if rec == nil {
					return nil
				}
				sums := rec.List(flightrec.Query{Limit: n})
				ids := make([]string, 0, len(sums))
				for _, s := range sums {
					ids = append(ids, s.Trace)
				}
				return ids
			},
		})
		if err != nil {
			log.Fatalf("radiusd: %v", err)
		}
		profEng.AddTrigger("slo_fast_burn", prof.HealthTrigger(eng.Health))
		profEng.AddTrigger("authwatch_alert", prof.HealthTrigger(watch.Health))
		profEng.AddTrigger("latency_spike", prof.LatencySpikeTrigger(
			[]*obs.Histogram{reg.Histogram("radius_request_duration_seconds", nil)},
			profSlow.Seconds(), 20))
		profEng.Start()
		defer profEng.Stop()
	}

	upstreamClient := &radius.Client{
		Addr: *upstream, Secret: []byte(*upstreamSecret), Timeout: *timeout,
	}
	srv := &radius.Server{
		Secret:  []byte(*secret),
		Handler: &radius.Proxy{Upstream: upstreamClient},
		Logf:    log.Printf,
		Obs:     reg,
		Logger:  obs.NewLogger(logSink, obs.LevelInfo).RateLimit(200, time.Second, reg),
		Events:  bus,
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultCorrupt > 0 || *faultDelay > 0 || *faultJitter > 0 {
		fn := faultnet.New(faultnet.Config{
			Seed:        *faultSeed,
			Obs:         reg,
			DropRate:    *faultDrop,
			DupRate:     *faultDup,
			CorruptRate: *faultCorrupt,
			Delay:       *faultDelay,
			Jitter:      *faultJitter,
		})
		srv.ListenPacket = fn.ListenPacket
		upstreamClient.Dial = fn.Dial
		upstreamClient.Obs = reg
		log.Printf("radiusd: FAULT INJECTION ACTIVE (seed=%d drop=%.2f dup=%.2f corrupt=%.2f delay=%s jitter=%s)",
			*faultSeed, *faultDrop, *faultDup, *faultCorrupt, *faultDelay, *faultJitter)
	}
	if *obsAddr != "" {
		mux := http.NewServeMux()
		obs.Mount(mux, reg, watch.Health)
		watch.Mount(mux)
		eng.Mount(mux)
		if rec != nil {
			rec.Mount(mux)
		}
		profEng.Mount(mux)
		go func() {
			log.Printf("radiusd: ops endpoints on %s (+ /debug/authwatch, /debug/slo, /debug/flightrec, /debug/prof)", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, mux); err != nil {
				log.Fatalf("radiusd: obs: %v", err)
			}
		}()
	}
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatalf("radiusd: %v", err)
	}
	defer srv.Close()
	log.Printf("radiusd: proxying %s -> %s", srv.Addr(), *upstream)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
