// Command radiusd runs a standalone RADIUS proxy, the middle tier of the
// paper's §3.2 architecture: login nodes talk to a handful of proxies
// which chain to the server in front of the OTP database.
//
// Example:
//
//	radiusd -listen 127.0.0.1:1812 -secret nas-secret \
//	        -upstream 127.0.0.1:1813 -upstream-secret otpd-secret
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmfa/internal/obs"
	"openmfa/internal/radius"
)

func main() {
	var (
		listen         = flag.String("listen", "127.0.0.1:1812", "listen address")
		secret         = flag.String("secret", "", "shared secret with downstream NAS (required)")
		upstream       = flag.String("upstream", "", "upstream RADIUS server address (required)")
		upstreamSecret = flag.String("upstream-secret", "", "shared secret with upstream (required)")
		timeout        = flag.Duration("timeout", 2*time.Second, "upstream per-attempt timeout")
		obsAddr        = flag.String("obs-addr", "", "ops HTTP listen address (/metrics, /healthz, /debug/pprof); empty = disabled")
	)
	flag.Parse()
	if *secret == "" || *upstream == "" || *upstreamSecret == "" {
		log.Fatal("radiusd: -secret, -upstream and -upstream-secret are required")
	}

	reg := obs.NewRegistry()
	srv := &radius.Server{
		Secret: []byte(*secret),
		Handler: &radius.Proxy{Upstream: &radius.Client{
			Addr: *upstream, Secret: []byte(*upstreamSecret), Timeout: *timeout,
		}},
		Logf:   log.Printf,
		Obs:    reg,
		Logger: obs.NewLogger(os.Stderr, obs.LevelInfo),
	}
	if *obsAddr != "" {
		go func() {
			log.Printf("radiusd: ops endpoints on %s", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, obs.Handler(reg)); err != nil {
				log.Fatalf("radiusd: obs: %v", err)
			}
		}()
	}
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatalf("radiusd: %v", err)
	}
	defer srv.Close()
	log.Printf("radiusd: proxying %s -> %s", srv.Addr(), *upstream)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
