// Command tokengen is a command-line software token: the functional
// equivalent of the paper's smartphone application for environments
// without one. It generates fresh TOTP keys (printing the otpauth:// QR
// payload), shows current codes, and validates codes for debugging.
//
// Usage:
//
//	tokengen new -issuer TACC -account alice        # generate a key
//	tokengen code -secret JBSWY3DPEHPK3PXP          # current code
//	tokengen code -uri 'otpauth://totp/...'         # current code from URI
//	tokengen watch -secret JBSWY3DPEHPK3PXP         # stream codes
//	tokengen verify -secret ... -code 123456        # check a code
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"openmfa/internal/cryptoutil"
	"openmfa/internal/otp"
	"openmfa/internal/qr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "new":
		cmdNew(os.Args[2:])
	case "code":
		cmdCode(os.Args[2:])
	case "watch":
		cmdWatch(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tokengen {new|code|watch|verify} [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tokengen: "+format+"\n", args...)
	os.Exit(1)
}

func cmdNew(args []string) {
	fs := flag.NewFlagSet("new", flag.ExitOnError)
	issuer := fs.String("issuer", "HPC", "issuer label")
	account := fs.String("account", "", "account name (required)")
	showQR := fs.Bool("qr", false, "render a scannable QR code")
	invert := fs.Bool("invert", false, "invert the QR for dark terminals")
	fs.Parse(args)
	if *account == "" {
		fatalf("-account required")
	}
	key := otp.NewKey(*issuer, *account, cryptoutil.RandomBytes)
	fmt.Printf("secret: %s\nuri:    %s\n", otp.EncodeSecret(key.Secret), key.URI())
	if *showQR {
		code, err := qr.Encode(key.URI(), qr.L)
		if err != nil {
			fatalf("%v", err)
		}
		if *invert {
			fmt.Println(code.RenderInverted())
		} else {
			fmt.Println(code.Render())
		}
	}
}

func loadKey(secret, uri string) otp.Key {
	switch {
	case uri != "":
		k, err := otp.ParseURI(uri)
		if err != nil {
			fatalf("%v", err)
		}
		return k
	case secret != "":
		b, err := otp.DecodeSecret(secret)
		if err != nil {
			fatalf("%v", err)
		}
		return otp.Key{Secret: b, Options: otp.DefaultTOTPOptions()}
	default:
		fatalf("one of -secret or -uri required")
		panic("unreachable")
	}
}

func cmdCode(args []string) {
	fs := flag.NewFlagSet("code", flag.ExitOnError)
	secret := fs.String("secret", "", "base32 secret")
	uri := fs.String("uri", "", "otpauth:// URI")
	fs.Parse(args)
	k := loadKey(*secret, *uri)
	code, err := otp.TOTP(k.Secret, time.Now(), k.Options)
	if err != nil {
		fatalf("%v", err)
	}
	remaining := int(k.Options.Period/time.Second) - int(time.Now().Unix())%int(k.Options.Period/time.Second)
	fmt.Printf("%s (valid %ds)\n", code, remaining)
}

func cmdWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	secret := fs.String("secret", "", "base32 secret")
	uri := fs.String("uri", "", "otpauth:// URI")
	n := fs.Int("n", 5, "number of codes to emit")
	fs.Parse(args)
	k := loadKey(*secret, *uri)
	for i := 0; i < *n; i++ {
		code, err := otp.TOTP(k.Secret, time.Now(), k.Options)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(code)
		if i < *n-1 {
			step := int64(k.Options.Period / time.Second)
			next := (time.Now().Unix()/step + 1) * step
			time.Sleep(time.Until(time.Unix(next, 0)))
		}
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	secret := fs.String("secret", "", "base32 secret")
	uri := fs.String("uri", "", "otpauth:// URI")
	code := fs.String("code", "", "code to verify")
	fs.Parse(args)
	k := loadKey(*secret, *uri)
	if _, ok := otp.ValidateTOTP(k.Secret, *code, time.Now(), k.Options); ok {
		fmt.Println("valid")
		return
	}
	fmt.Println("INVALID")
	os.Exit(1)
}
