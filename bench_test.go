// Benchmark harness: one benchmark per paper table/figure plus ablations
// of the design choices DESIGN.md calls out. The figure benchmarks run the
// rollout simulator at a reduced scale and report the figure's headline
// quantities as custom metrics; run cmd/rollout for the full-scale
// reproduction with charts.
package openmfa_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/core"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/pam"
	"openmfa/internal/radius"
	"openmfa/internal/rollout"
	"openmfa/internal/sshd"
	"openmfa/internal/store"
)

// benchRollout runs one reduced-scale simulation per iteration.
func benchRollout(b *testing.B, end time.Time) *rollout.Result {
	b.Helper()
	var res *rollout.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = rollout.Run(rollout.Config{Users: 120, Seed: 7, End: end})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

var end2016 = time.Date(2016, 12, 31, 0, 0, 0, 0, time.UTC)

func day(s string) time.Time {
	t, _ := time.Parse("2006-01-02", s)
	return t
}

// BenchmarkFig3UniqueMFAUsers regenerates Figure 3 and reports the
// phase-2 adoption jump.
func BenchmarkFig3UniqueMFAUsers(b *testing.B) {
	res := benchRollout(b, end2016)
	m := res.Metrics
	pre, post := 0.0, 0.0
	for dIdx := 0; dIdx < 5; dIdx++ {
		pre += m.Get(day("2016-08-29").AddDate(0, 0, dIdx), rollout.SeriesUniqueMFAUsers)
		post += m.Get(day("2016-09-07").AddDate(0, 0, dIdx), rollout.SeriesUniqueMFAUsers)
	}
	if pre > 0 {
		b.ReportMetric(post/pre, "phase2-jump-x")
	}
	peak, _ := m.Max(rollout.SeriesUniqueMFAUsers)
	b.ReportMetric(peak, "peak-users/day")
}

// BenchmarkFig4TrafficMix regenerates Figure 4 and reports the drop in
// external non-MFA traffic across the phase-2 boundary.
func BenchmarkFig4TrafficMix(b *testing.B) {
	res := benchRollout(b, end2016)
	m := res.Metrics
	nonMFA := func(from, to string) float64 {
		return m.SumRange(rollout.SeriesTrafficExternal, day(from), day(to)) -
			m.SumRange(rollout.SeriesTrafficExtMFA, day(from), day(to))
	}
	before := nonMFA("2016-08-22", "2016-09-05") / 15
	after := nonMFA("2016-09-07", "2016-09-21") / 15
	if before > 0 {
		b.ReportMetric(after/before, "ext-nonmfa-ratio")
	}
	b.ReportMetric(float64(res.TotalLogins), "logins")
}

// BenchmarkFig5Tickets regenerates Figure 5 and reports both MFA ticket
// shares (paper: 6.7% and 2.7%).
func BenchmarkFig5Tickets(b *testing.B) {
	res := benchRollout(b, time.Date(2017, 3, 31, 0, 0, 0, 0, time.UTC))
	tr, st := res.TicketShares()
	b.ReportMetric(tr, "share-augdec-%")
	b.ReportMetric(st, "share-janmar-%")
}

// BenchmarkFig6NewPairings regenerates Figure 6 and reports the spike
// ranks (paper: 09-07 first, 10-04 fourth).
func BenchmarkFig6NewPairings(b *testing.B) {
	res := benchRollout(b, end2016)
	m := res.Metrics
	b.ReportMetric(float64(m.Rank(rollout.SeriesPairingsNew, day("2016-09-07"))), "rank-0907")
	b.ReportMetric(float64(m.Rank(rollout.SeriesPairingsNew, day("2016-10-04"))), "rank-1004")
}

// BenchmarkTable1PairingBreakdown regenerates Table 1 and reports the
// four percentages (paper: 55.38 / 40.22 / 2.97 / 1.43).
func BenchmarkTable1PairingBreakdown(b *testing.B) {
	res := benchRollout(b, end2016)
	b.ReportMetric(res.Table1.Percent("soft"), "soft-%")
	b.ReportMetric(res.Table1.Percent("sms"), "sms-%")
	b.ReportMetric(res.Table1.Percent("training"), "training-%")
	b.ReportMetric(res.Table1.Percent("hard"), "hard-%")
}

// --- end-to-end infrastructure benchmarks ---

var (
	infraOnce sync.Once
	infra     *core.Infrastructure
	infraSim  *clock.Sim
	infraEnr  *otpd.Enrollment
)

func sharedInfra(b *testing.B) (*core.Infrastructure, *clock.Sim) {
	b.Helper()
	infraOnce.Do(func() {
		infraSim = clock.NewSim(time.Date(2016, 10, 10, 8, 0, 0, 0, time.UTC))
		var err error
		infra, err = core.New(core.Options{
			Clock:          infraSim,
			ExemptionRules: "permit : gateway1 : ALL : ALL",
		})
		if err != nil {
			panic(err)
		}
		if _, err := infra.CreateUser("alice", "a@x", "pw", idm.ClassUser); err != nil {
			panic(err)
		}
		infraEnr, err = infra.PairSoft("alice")
		if err != nil {
			panic(err)
		}
		infra.CreateUser("gateway1", "g@x", "pw", idm.ClassGateway)
	})
	return infra, infraSim
}

// BenchmarkEndToEndMFALogin measures a full login: TCP + pubkeyless
// password first factor + RADIUS round-robin + TOTP validation.
func BenchmarkEndToEndMFALogin(b *testing.B) {
	inf, sim := sharedInfra(b)
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		code, _ := otp.TOTP(infraEnr.Secret, sim.Now(), inf.OTP.OTPOptions())
		return code, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(31 * time.Second) // fresh code (consumed-code protection)
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "alice", TTY: true, Responder: r})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkEndToEndExemptLogin measures the §3.4 gateway fast path: the
// exemption short-circuits before any RADIUS traffic.
func BenchmarkEndToEndExemptLogin(b *testing.B) {
	inf, _ := sharedInfra(b)
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) { return "pw", nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "gateway1", Responder: r})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// --- hot-path concurrency ---

// BenchmarkValidateParallel measures multi-user OTP validation through one
// shared Server with per-user lock striping. Each goroutine owns a
// distinct user and validates fresh, correct codes. Run with -cpu 1,2,4,8:
// throughput must scale with GOMAXPROCS because distinct users no longer
// serialise behind a process-wide mutex.
func BenchmarkValidateParallel(b *testing.B) {
	sim := clock.NewSim(time.Date(2016, 10, 10, 8, 0, 0, 0, time.UTC))
	opts := otp.DefaultTOTPOptions()
	// Wide skew so a code computed just before other goroutines advance
	// the shared simulated clock still validates (advances are 31 s each;
	// the centre-first spiral keeps the common case at one HMAC).
	opts.Skew = 2 * time.Hour
	srv, err := otpd.New(otpd.Config{
		DB:            store.OpenMemory(),
		EncryptionKey: cryptoutil.RandomBytes(32),
		Clock:         sim,
		OTP:           opts,
		// Six-digit codes collide within the wide window with
		// probability ~1e-6 per candidate counter; over millions of
		// iterations a few spurious rejections are expected and must
		// not deactivate a bench user.
		LockoutThreshold: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	const users = 128
	secrets := make([][]byte, users)
	for i := 0; i < users; i++ {
		enr, err := srv.InitSoftToken(fmt.Sprintf("bench-user-%03d", i))
		if err != nil {
			b.Fatal(err)
		}
		secrets[i] = enr.Secret
	}
	var next, fails int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(atomic.AddInt64(&next, 1)-1) % users
		user := fmt.Sprintf("bench-user-%03d", i)
		for pb.Next() {
			// A fresh step per iteration: the replay high-water mark
			// advances monotonically, so every code is accepted once.
			sim.Advance(31 * time.Second)
			code, err := otp.TOTP(secrets[i], sim.Now(), srv.OTPOptions())
			if err != nil {
				b.Fatal(err)
			}
			res, err := srv.Check(user, code)
			if err != nil {
				b.Fatal(err)
			}
			if !res.OK {
				atomic.AddInt64(&fails, 1)
			}
		}
	})
	b.StopTimer()
	// Code collisions inside the skew window can spuriously reject a
	// fresh code (the matched counter lands at or below the replay mark).
	// That is probability noise, not a concurrency defect — but anything
	// beyond noise means validations are corrupting each other's state.
	ratio := float64(atomic.LoadInt64(&fails)) / float64(b.N)
	b.ReportMetric(ratio, "fail-ratio")
	if ratio > 0.01 {
		b.Fatalf("%.2f%% of validations failed", 100*ratio)
	}
}

// BenchmarkRadiusRetransmitStorm measures the dedup fast path under a
// retransmit storm: each iteration sends one unique Access-Request plus 7
// identical retransmissions and waits for all replies. The handler must
// run exactly once per iteration (reported as handler-calls/op).
func BenchmarkRadiusRetransmitStorm(b *testing.B) {
	secret := []byte("storm-bench-secret")
	var handled int64
	srv := &radius.Server{
		Secret: secret,
		Handler: radius.HandlerFunc(func(*radius.Request) *radius.Packet {
			atomic.AddInt64(&handled, 1)
			return &radius.Packet{Code: radius.AccessAccept}
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, radius.MaxPacketLen)
	const copies = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := radius.NewRequest(byte(i)) // fresh authenticator => fresh dedup key
		req.AddString(radius.AttrUserName, "storm")
		if err := radius.AddMessageAuthenticator(req, secret); err != nil {
			b.Fatal(err)
		}
		wire, err := req.Encode()
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < copies; c++ {
			if _, err := conn.Write(wire); err != nil {
				b.Fatal(err)
			}
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for c := 0; c < copies; c++ {
			if _, err := conn.Read(buf); err != nil {
				b.Fatalf("reply %d/%d: %v", c, copies, err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(atomic.LoadInt64(&handled))/float64(b.N), "handler-calls/op")
}

// --- ablations ---

// BenchmarkAblationDriftWindow sweeps the §3.3 ±300 s drift tolerance:
// wider windows cost more HMAC evaluations on worst-case validation.
func BenchmarkAblationDriftWindow(b *testing.B) {
	secret := []byte("12345678901234567890")
	now := time.Unix(1475000000, 0)
	for _, skew := range []time.Duration{0, 30 * time.Second, 300 * time.Second, 900 * time.Second} {
		b.Run(skew.String(), func(b *testing.B) {
			o := otp.DefaultTOTPOptions()
			o.Skew = skew
			code, _ := otp.TOTP(secret, now.Add(-skew), o) // worst case: max drift
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := otp.ValidateTOTP(secret, code, now, o); !ok {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// BenchmarkAblationRadiusFarmSize compares validation latency through
// farms of different sizes under a healthy network (round-robin cost) —
// the §3.2 "scalable number of back end components".
func BenchmarkAblationRadiusFarmSize(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%d-servers", n), func(b *testing.B) {
			sim := clock.NewSim(time.Date(2016, 10, 10, 8, 0, 0, 0, time.UTC))
			db := store.OpenMemory()
			srv, err := otpd.New(otpd.Config{DB: db,
				EncryptionKey: cryptoutil.RandomBytes(32), Clock: sim})
			if err != nil {
				b.Fatal(err)
			}
			enr, _ := srv.InitSoftToken("u")
			secret := []byte("bench-secret")
			var addrs []string
			for i := 0; i < n; i++ {
				rs := &radius.Server{Secret: secret, Handler: &otpd.RadiusHandler{OTP: srv}}
				if err := rs.ListenAndServe("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				defer rs.Close()
				addrs = append(addrs, rs.Addr().String())
			}
			pool := radius.NewPool(addrs, secret, 2*time.Second, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Advance(31 * time.Second)
				code, _ := otp.TOTP(enr.Secret, sim.Now(), srv.OTPOptions())
				resp, err := pool.Exchange(func(req *radius.Packet) {
					req.AddString(radius.AttrUserName, "u")
					hidden, _ := radius.HidePassword(code, secret, req.Authenticator)
					req.Add(radius.AttrUserPassword, hidden)
				})
				if err != nil || resp.Code != radius.AccessAccept {
					b.Fatalf("exchange: %v %v", resp, err)
				}
			}
		})
	}
}

// BenchmarkAblationProxyChain measures the latency cost of the §3.2 proxy
// chaining (0, 1, and 2 proxy hops in front of the terminal server).
func BenchmarkAblationProxyChain(b *testing.B) {
	for _, hops := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("%d-hops", hops), func(b *testing.B) {
			secret := []byte("hop-secret")
			terminal := &radius.Server{Secret: secret,
				Handler: radius.HandlerFunc(func(*radius.Request) *radius.Packet {
					return &radius.Packet{Code: radius.AccessAccept}
				})}
			if err := terminal.ListenAndServe("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer terminal.Close()
			addr := terminal.Addr().String()
			for i := 0; i < hops; i++ {
				proxy := &radius.Server{Secret: secret,
					Handler: &radius.Proxy{Upstream: &radius.Client{
						Addr: addr, Secret: secret, Timeout: 2 * time.Second}}}
				if err := proxy.ListenAndServe("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				defer proxy.Close()
				addr = proxy.Addr().String()
			}
			c := &radius.Client{Addr: addr, Secret: secret, Timeout: 2 * time.Second}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := radius.NewRequest(0)
				req.AddString(radius.AttrUserName, "u")
				if _, err := c.Exchange(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLockoutThreshold sweeps the §3.1 failure threshold:
// the cost of a failure storm up to deactivation.
func BenchmarkAblationLockoutThreshold(b *testing.B) {
	for _, threshold := range []int{5, 20, 100} {
		b.Run(fmt.Sprintf("threshold-%d", threshold), func(b *testing.B) {
			sim := clock.NewSim(time.Unix(1475000000, 0))
			srv, err := otpd.New(otpd.Config{
				DB:            store.OpenMemory(),
				EncryptionKey: cryptoutil.RandomBytes(32),
				Clock:         sim, LockoutThreshold: threshold,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.InitSoftToken("victim")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < threshold; j++ {
					srv.Check("victim", "000000")
				}
				b.StopTimer()
				srv.ResetFailures("victim")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationEnforcementModes compares the per-login PAM cost of
// the four tiers for an unpaired user (off/paired/countdown skip RADIUS).
func BenchmarkAblationEnforcementModes(b *testing.B) {
	inf, sim := sharedInfra(b)
	inf.CreateUser("unpaired", "u@x", "pw", idm.ClassUser)
	for _, mode := range []pam.Mode{pam.ModeOff, pam.ModePaired, pam.ModeCountdown} {
		b.Run(string(mode), func(b *testing.B) {
			inf.Mode.Set(pam.TokenConfig{
				Mode:     mode,
				Deadline: sim.Now().AddDate(0, 1, 0),
				InfoURL:  "https://portal/mfa",
			})
			r := &sshd.FuncResponder{}
			r.Fn = func(echo bool, prompt string) (string, error) {
				if strings.Contains(prompt, "Password") {
					return "pw", nil
				}
				return "", nil // acknowledgement
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "unpaired", TTY: true, Responder: r})
				if err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
	}
	inf.Mode.SetMode(pam.ModeFull) // restore for other benches
}
