// Package openmfa is a from-scratch, stdlib-only Go reproduction of
// "Securing HPC: Development of a Low Cost, Open Source Multi-factor
// Authentication Infrastructure" (Proctor, Storm, Hanlon, Mendoza — SC17).
//
// The library lives under internal/: see internal/core for the assembled
// infrastructure, DESIGN.md for the system inventory and experiment index,
// and EXPERIMENTS.md for paper-vs-measured results. The root package holds
// the benchmark harness that regenerates every table and figure
// (bench_test.go).
package openmfa
