# Tier-1 verification gate. `make verify` is what CI and pre-merge runs:
# it must stay green on every commit.

GO ?= go

.PHONY: verify vet build test race bench-concurrency bench clean

verify: vet build test race bench-concurrency

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The hot-path concurrency benchmarks: BenchmarkValidateParallel must not
# collapse as GOMAXPROCS grows (per-user lock striping), and
# BenchmarkRadiusRetransmitStorm must report handler-calls/op = 1
# (exactly-once evaluation under retransmit storms).
bench-concurrency:
	$(GO) test -run xxx -bench 'BenchmarkValidateParallel|BenchmarkRadiusRetransmitStorm' -benchtime 0.5s -cpu 1,2,4 .

# Full benchmark harness (figures, tables, ablations).
bench:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
