# Tier-1 verification gate. `make verify` is what CI and pre-merge runs:
# it must stay green on every commit.

GO ?= go

.PHONY: verify vet build test race chaos bench-concurrency bench-obs bench clean

verify: vet build test race chaos bench-concurrency bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Degraded-network gate, seeded and deterministic: the full login storm
# under 30% datagram loss, 2x duplication, and a partitioned RADIUS
# backend (TestAuthUnderChaos), plus the per-layer fault regressions
# (spoofed-datagram discard, faultnet self-tests, directory fail-closed),
# all with the race detector watching.
chaos:
	$(GO) test -race -count 1 -run 'TestAuthUnderChaos' ./internal/core
	$(GO) test -race -count 1 ./internal/faultnet ./internal/leakcheck
	$(GO) test -race -count 1 -run 'TestSpoofedResponseSilentlyDiscarded|TestDeadServerRetransmitBackoff|TestPool' ./internal/radius
	$(GO) test -race -count 1 -run 'TestClientThroughFaultNet' ./internal/directory

# The hot-path concurrency benchmarks: BenchmarkValidateParallel must not
# collapse as GOMAXPROCS grows (per-user lock striping), and
# BenchmarkRadiusRetransmitStorm must report handler-calls/op = 1
# (exactly-once evaluation under retransmit storms).
bench-concurrency:
	$(GO) test -run xxx -bench 'BenchmarkValidateParallel|BenchmarkRadiusRetransmitStorm' -benchtime 0.5s -cpu 1,2,4 .

# Observability overhead gate: vet the obs package and prove that the
# instrumented otpd.Check hot path stays within 5% of the uninstrumented
# one (interleaved min-of-trials comparison; see TestObsOverheadGate).
bench-obs:
	$(GO) vet ./internal/obs/
	OBS_OVERHEAD_GATE=1 $(GO) test ./internal/otpd -run TestObsOverheadGate -count 1 -v

# Full benchmark harness (figures, tables, ablations).
bench:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
