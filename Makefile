# Tier-1 verification gate. `make verify` is what CI and pre-merge runs:
# it must stay green on every commit.

GO ?= go

.PHONY: verify vet build test race chaos bench-concurrency bench-obs bench bench-json bench-json-smoke figures authwatch-smoke flightrec-smoke repl-smoke prof-smoke risk-smoke metrics-lint fuzz cover clean

verify: vet build test race chaos bench-concurrency bench-obs bench-json-smoke authwatch-smoke flightrec-smoke repl-smoke prof-smoke risk-smoke metrics-lint fuzz cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Degraded-network gate, seeded and deterministic: the full login storm
# under 30% datagram loss, 2x duplication, and a partitioned RADIUS
# backend (TestAuthUnderChaos), plus the per-layer fault regressions
# (spoofed-datagram discard, faultnet self-tests, directory fail-closed),
# all with the race detector watching.
chaos:
	$(GO) test -race -count 1 -run 'TestAuthUnderChaos' ./internal/core
	$(GO) test -race -count 1 ./internal/faultnet ./internal/leakcheck
	$(GO) test -race -count 1 -run 'TestSpoofedResponseSilentlyDiscarded|TestDeadServerRetransmitBackoff|TestPool' ./internal/radius
	$(GO) test -race -count 1 -run 'TestClientThroughFaultNet' ./internal/directory

# The hot-path concurrency benchmarks: BenchmarkValidateParallel must not
# collapse as GOMAXPROCS grows (per-user lock striping), and
# BenchmarkRadiusRetransmitStorm must report handler-calls/op = 1
# (exactly-once evaluation under retransmit storms).
bench-concurrency:
	$(GO) test -run xxx -bench 'BenchmarkValidateParallel|BenchmarkRadiusRetransmitStorm' -benchtime 0.5s -cpu 1,2,4 .

# Observability overhead gates: vet the obs package and prove that (a) the
# metrics-instrumented otpd.Check hot path stays within 5% of the
# uninstrumented one (TestObsOverheadGate), (b) the span + event pipeline
# stays within 5% of metrics-only (TestSpanEventOverheadGate), (c) the
# continuous profiler sampling at its structural ceiling keeps Check
# within 5% of profiler-off (TestProfOverheadGate), and (d) the PAM risk
# gate keeps the full stack's password+gate path within 5% of a gateless
# stack (TestRiskGateOverheadGate). All are interleaved min-of-trials
# comparisons.
bench-obs:
	$(GO) vet ./internal/obs/
	OBS_OVERHEAD_GATE=1 $(GO) test ./internal/otpd -run 'TestObsOverheadGate|TestSpanEventOverheadGate|TestProfOverheadGate' -count 1 -v -timeout 20m
	OBS_OVERHEAD_GATE=1 $(GO) test ./internal/pam -run 'TestRiskGateOverheadGate' -count 1 -v -timeout 20m

# Streaming-analytics smoke: a short rollout with the event bus attached,
# cross-checking the live authwatch day buckets against the batch report
# (exact equality, race detector on).
authwatch-smoke:
	$(GO) test -race -count 1 -run 'TestCrossCheckStreamingMatchesBatch' ./internal/rollout

# Flight recorder gate: the chaos-storm acceptance test (every failed
# login retrievable by trace ID with a complete four-leg span tree),
# deterministic success sampling across identically seeded runs, the SLO
# burn-rate / healthz acceptance test, and the torn-tail truncate-at-every-
# byte recovery sweep — race detector on.
flightrec-smoke:
	$(GO) test -race -count 1 -run 'TestFlightRecorderUnderChaosStorm|TestSuccessSamplingReproducibleAcrossRuns|TestFailureBurstBurnsSLOAndDegradesHealthz' ./internal/core
	$(GO) test -race -count 1 -run 'TestTornTailSweep|TestRecoveryAfterRestart' ./internal/flightrec

# Replication / HA gate: the WAL log-shipping protocol tests (catch-up
# from ring/segments/snapshot, epoch fencing both directions, MinSync
# fail-closed, torn-stream determinism), the leader-failover capstone
# (leader killed mid login-storm under a faultnet partition; the promoted
# standby must show zero double-accepted OTPs and zero lost lockout
# increments), and the store-side LSN / compaction durability
# regressions — race detector on.
repl-smoke:
	$(GO) test -race -count 1 ./internal/store/repl
	$(GO) test -race -count 1 -run 'TestLeaderFailoverUnderLoginStorm' ./internal/core
	$(GO) test -race -count 1 -run 'TestLSNMonotonicAcrossCompactReopen|TestCompact|TestEpoch|TestFollowerMode|TestApplyReplicated|TestReplica|TestSegmentFrames' ./internal/store
	$(GO) test -race -count 1 -run 'TestCompactThenCrash' ./internal/store/crashtest

# Black-box gate: the capstone e2e (a login storm trips the SLO fast-burn
# trigger and exactly one debounced incident bundle lands with a CPU delta
# profile, goroutine dump, metrics snapshot, and the storm's trace IDs),
# the concurrent diagnostics-endpoint scrape, the incident torn-tail
# truncate-at-every-byte sweep, the shared segment-log layer, and the
# offline loganalyze incident reader — race detector on.
prof-smoke:
	$(GO) test -race -count 1 -run 'TestLoginStormTripsOneIncidentBundle|TestDiagnosticsEndpointsConcurrentScrape' ./internal/core
	$(GO) test -race -count 1 ./internal/obs/prof ./internal/seglog ./cmd/loganalyze

# Adaptive-MFA gate (DESIGN.md §14), race detector on: the attack-mix
# evaluation (every scripted breach removed engine-on, zero legitimate
# lockouts, fewer prompts), byte-identical double runs, exact authwatch
# parity on the on-arm stream, the JSONL replay regression, the bounded
# feature store (eviction, ring, concurrency), and the PAM gate semantics
# (skip/step-up/deny, exemption override, fail-open).
risk-smoke:
	$(GO) test -race -count 1 -run 'TestRiskEval' ./internal/rollout
	$(GO) test -race -count 1 ./internal/risk/... ./internal/geoip
	$(GO) test -race -count 1 -run 'TestRiskGate|TestRiskFeedbackLoop' ./internal/pam ./internal/sshd

# Metrics hygiene gate: lint the live portal /metrics exposition (typing,
# sort order, label consistency, unit-suffix conventions) with runtime,
# SLO, and flight recorder families all registered.
metrics-lint:
	$(GO) test -count 1 -run 'TestPortalMetricsExpositionIsLintClean' ./internal/core
	$(GO) test -count 1 -run 'TestLint' ./internal/obs

# Figure parity gate: regenerate the paper's figures from a fresh
# full-calendar run with the live authwatch aggregator cross-checking every
# daily series, then fail on any drift from the checked-in FIGURES.txt.
# On drift the regenerated output is left in .figures.gen for inspection.
figures:
	$(GO) run ./cmd/rollout -all -q -authwatch > .figures.gen
	diff -u FIGURES.txt .figures.gen
	rm -f .figures.gen

# WAL-codec fuzz smoke: ten seconds per target against the frame decoder
# and the recovery path (go fuzz takes one target per invocation).
# -fuzzminimizetime is capped in executions, not wall time: minimizing a
# coverage-increasing input re-runs the (file-I/O-heavy) recovery target,
# and the default 60s budget would eat the whole smoke.
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzDecodeRecord$$' -fuzztime 10s -fuzzminimizetime 10x ./internal/store
	$(GO) test -run xxx -fuzz 'FuzzRecoverWAL$$' -fuzztime 10s -fuzzminimizetime 10x ./internal/store

# Coverage gates, 90% statement floors each: the sharded store (with its
# crashtest harness and the replication protocol exercising it), and the
# adaptive-MFA decision layer (risk engine + feature store + geoip) whose
# skip/deny outcomes are security-critical.
cover:
	$(GO) test -count 1 -coverprofile .cover.store.out \
		-coverpkg openmfa/internal/store \
		./internal/store ./internal/store/crashtest ./internal/store/repl
	@$(GO) tool cover -func .cover.store.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/store statement coverage: %.1f%% (floor 90%%)\n", pct; \
		if (pct < 90) { print "FAIL: coverage below floor"; exit 1 } }'
	@rm -f .cover.store.out
	$(GO) test -count 1 -coverprofile .cover.risk.out \
		-coverpkg openmfa/internal/risk,openmfa/internal/risk/feature,openmfa/internal/geoip \
		./internal/risk/... ./internal/geoip
	@$(GO) tool cover -func .cover.risk.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "risk+feature+geoip statement coverage: %.1f%% (floor 90%%)\n", pct; \
		if (pct < 90) { print "FAIL: coverage below floor"; exit 1 } }'
	@rm -f .cover.risk.out

# Full benchmark harness (figures, tables, ablations).
bench:
	$(GO) test -bench . -benchtime 1x ./...

# Recorded perf trajectory: run the wire-to-WAL hot-path benchmarks with
# -benchmem and write BENCH_$(BENCH_PR).json (see DESIGN.md §10). The
# -require list fails the target if any expected benchmark disappears.
BENCH_PR ?= 9
BENCH_JSON_TIME ?= 1s
BENCH_JSON_PATTERN = BenchmarkHOTP$$|BenchmarkEncode$$|BenchmarkDecode$$|BenchmarkHidePassword$$|BenchmarkExchange$$|BenchmarkCheckSuccess$$|BenchmarkSecretCacheHit$$|BenchmarkSecretOpenMiss$$|BenchmarkApplyParallel$$|BenchmarkBatcherParallel$$|BenchmarkGroupCommitSync$$|BenchmarkEndToEndMFALogin$$|BenchmarkCheckUnderProfiler$$
BENCH_JSON_PKGS = ./internal/otp ./internal/radius ./internal/otpd ./internal/store .
BENCH_JSON_REQUIRE = HOTP,Encode,Decode,HidePassword,Exchange,CheckSuccess,SecretCacheHit,SecretOpenMiss,ApplyParallel,BatcherParallel,GroupCommitSync,EndToEndMFALogin,CheckUnderProfiler

bench-json:
	$(GO) test -run xxx -bench '$(BENCH_JSON_PATTERN)' -benchmem \
		-benchtime $(BENCH_JSON_TIME) -count 1 $(BENCH_JSON_PKGS) \
		| $(GO) run ./cmd/benchjson -pr $(BENCH_PR) \
		-require $(BENCH_JSON_REQUIRE) -out BENCH_$(BENCH_PR).json

# Verify-gate smoke: same pipeline at -benchtime 1x, output discarded.
# Catches renamed/broken benchmarks and parser regressions cheaply.
bench-json-smoke:
	$(GO) test -run xxx -bench '$(BENCH_JSON_PATTERN)' -benchmem \
		-benchtime 1x -count 1 $(BENCH_JSON_PKGS) \
		| $(GO) run ./cmd/benchjson -pr $(BENCH_PR) \
		-require $(BENCH_JSON_REQUIRE) > /dev/null

clean:
	$(GO) clean ./...
