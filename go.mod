module openmfa

go 1.22
